//! Dependency-free JSON: a value tree, a writer, and a validator.
//!
//! The build is fully offline (no `serde`), so every JSON artifact in
//! the workspace — Chrome traces, `BENCH_*.json`, run manifests — is
//! emitted through [`Json`] and checked with [`parse`]. Integers are
//! first-class ([`Json::U64`]/[`Json::I64`] print exactly, no f64
//! round-trip), and non-finite floats serialize as `null` rather than
//! producing invalid JSON.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer, printed exactly.
    U64(u64),
    /// Signed integer, printed exactly.
    I64(i64),
    /// Floating point; NaN/∞ serialize as `null`.
    F64(f64),
    /// String (escaped on output).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is preserved on output.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Shorthand for building an object from `(key, value)` pairs.
#[must_use]
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Json {
    fn write(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // `{}` on an integral f64 prints no decimal point,
                    // which is still valid JSON, but keep a uniform
                    // "looks like a float" shape for readers.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        out.push_str(&format!("{v:.1}"));
                    } else {
                        out.push_str(&format!("{v}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
        }
    }

    /// Pretty-printed JSON text (two-space indent, trailing newline).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s.push('\n');
        s
    }

    /// Compact single-line JSON text.
    #[must_use]
    pub fn compact(&self) -> String {
        match self {
            Json::Arr(items) => {
                let inner: Vec<String> = items.iter().map(Json::compact).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| {
                        let mut s = String::new();
                        escape_into(k, &mut s);
                        format!("{s}:{}", v.compact())
                    })
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
            other => {
                let mut s = String::new();
                other.write(&mut s, 0);
                s
            }
        }
    }

    /// Member lookup on objects (`None` elsewhere / when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload as f64 (U64/I64/F64).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parses (and thereby validates) JSON text. Numbers land in
/// [`Json::F64`]; this is a structural validator for the workspace's
/// emitted artifacts, not a general interchange layer.
///
/// # Errors
/// A human-readable description with a byte offset on malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 64;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let s = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("invalid number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("invalid number at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>().map(Json::F64).map_err(|e| format!("number at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "non-ascii \\u escape".to_string())?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are accepted structurally and
                            // replaced — validation only.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this
                    // is always well-formed).
                    let s = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(s)
                        .map_err(|_| "invalid utf-8".to_string())?
                        .chars()
                        .next()
                        .expect("peeked byte implies a char");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_values() {
        let v = obj(vec![
            ("schema_version", Json::U64(1)),
            ("name", Json::from("tricky \"quotes\"\nand\tescapes")),
            ("neg", Json::I64(-42)),
            ("ratio", Json::F64(2.5)),
            ("whole", Json::F64(3.0)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("nan", Json::F64(f64::NAN)),
            ("items", Json::Arr(vec![Json::U64(1), Json::from("two"), Json::Arr(vec![])])),
            ("empty", Json::Obj(vec![])),
        ]);
        for text in [v.pretty(), v.compact()] {
            let parsed = parse(&text).expect("emitted JSON must parse");
            assert_eq!(
                parsed.get("name").unwrap().as_str(),
                Some("tricky \"quotes\"\nand\tescapes")
            );
            assert_eq!(parsed.get("neg").unwrap().as_f64(), Some(-42.0));
            assert_eq!(parsed.get("whole").unwrap().as_f64(), Some(3.0));
            assert_eq!(parsed.get("nan").unwrap(), &Json::Null);
            assert_eq!(parsed.get("items").unwrap().as_arr().unwrap().len(), 3);
        }
    }

    #[test]
    fn large_integers_print_exactly() {
        let v = Json::U64(u64::MAX);
        assert_eq!(v.compact(), u64::MAX.to_string());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1 2]",
            "tru",
            "\"\\x\"",
            "01x",
            "{}extra",
            "\"unterminated",
            "-",
            "1.",
            "1e",
            "[\u{1}\"a\"]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn accepts_unicode_and_escapes() {
        let v = parse("{\"k\": \"caf\\u00e9 ☕\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some("café ☕"));
    }

    #[test]
    fn depth_limit_guards_recursion() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
    }
}
