//! Unified observability plane for the CONGEST APSP workspace.
//!
//! Every layer — simulator, solver pipeline, oracle build, query serving,
//! benchmarks — emits into one process-global [`Telemetry`] instance:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   latency [`Histogram`]s (lock-free on the hot path: handles are
//!   plain atomics; the name → handle map is only locked at
//!   registration),
//! * structured trace spans ([`Telemetry::span_start`] /
//!   [`Telemetry::span_end`], with key=value attributes, monotonic
//!   nanosecond timestamps and logical thread ids) recorded into a
//!   bounded in-memory ring,
//! * exporters: Chrome trace-event JSON ([`export::chrome_trace`],
//!   loadable in Perfetto), a Prometheus-style text dump
//!   ([`export::prometheus`]), and a machine-readable run manifest
//!   ([`Manifest`], written as `results/run-*.json`).
//!
//! # Enabling
//!
//! The global plane starts **disabled**. In that state every
//! instrumentation site in the workspace reduces to one relaxed atomic
//! load and a branch ([`enabled`]) — nothing is timed, allocated, or
//! recorded, so a disabled build performs within measurement noise of a
//! build without the instrumentation (`benches/telemetry.rs` in
//! `congest_bench` guards this). Turn it on around the region you want
//! to observe:
//!
//! ```
//! let tele = congest_telemetry::enable();
//! // ... run a Solver, serve queries, ...
//! tele.registry().counter("demo.events").inc();
//! let trace = congest_telemetry::export::chrome_trace(&tele.spans());
//! congest_telemetry::disable();
//! assert!(trace.contains("traceEvents"));
//! ```
//!
//! # Reading a trace in Perfetto
//!
//! 1. Run an instrumented binary, e.g.
//!    `cargo run --release --example telemetry_trace`; it writes
//!    `results/trace-*.json` (and a `results/run-*.json` manifest).
//! 2. Open <https://ui.perfetto.dev> (or `chrome://tracing`) and load
//!    the `trace-*.json` file.
//! 3. Each solver phase appears as one complete slice whose name is the
//!    `Recorder` phase label (`step1: h-CSSSP for V`, …); engine-level
//!    `engine.run` begin/end pairs and sampled `engine.round` instants
//!    (see `SimConfig::trace_rounds`) sit on the emitting thread's
//!    track. Slice arguments carry rounds/messages/payload words.
//!
//! # Run manifests
//!
//! [`Manifest`] is the workspace's one JSON sink: it stamps
//! [`SCHEMA_VERSION`], a `kind`, and a creation timestamp, then takes
//! free-form sections built from [`json::Json`] values — graph
//! parameters, solver knobs, per-phase [`PhaseRow`]s, registry
//! snapshots. The `BENCH_*.json` files and `results/run-*.json` are all
//! written through it, so every artifact carries schema + knob
//! provenance. [`json::parse`] is a dependency-free validator for all
//! of them.

#![warn(missing_docs)]
#![deny(deprecated)]

pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod spans;

pub use export::{Manifest, PhaseRow, SCHEMA_VERSION};
pub use hist::Histogram;
pub use registry::{Counter, Gauge, Registry};
pub use spans::{SpanEvent, SpanId, SpanKind};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-global observability plane: a span ring plus a metric
/// registry sharing one monotonic clock. Obtained via [`global`] (or
/// [`enable`]); instrumentation sites guard every use with [`enabled`].
pub struct Telemetry {
    epoch: Instant,
    registry: Registry,
    spans: spans::SpanRing,
}

impl Telemetry {
    fn new() -> Self {
        Telemetry {
            epoch: Instant::now(),
            registry: Registry::new(),
            spans: spans::SpanRing::new(spans::DEFAULT_RING_CAPACITY),
        }
    }

    /// Monotonic nanoseconds since the plane was first touched.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The metric registry (counters, gauges, histograms).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Opens a span: records a begin event now and returns the id to
    /// close it with.
    pub fn span_start(&self, name: &str) -> SpanId {
        self.spans.start(name, self.now_ns())
    }

    /// Closes a span opened by [`span_start`](Self::span_start).
    pub fn span_end(&self, id: SpanId) {
        self.spans.end(id, self.now_ns(), Vec::new());
    }

    /// Closes a span, attaching `key=value` attributes to the end event.
    pub fn span_end_with(&self, id: SpanId, attrs: Vec<(String, String)>) {
        self.spans.end(id, self.now_ns(), attrs);
    }

    /// Records an already-measured complete span (begin + duration in
    /// one event) — used when the caller timed the region itself.
    pub fn complete_span(
        &self,
        name: &str,
        start_ns: u64,
        dur_ns: u64,
        attrs: Vec<(String, String)>,
    ) {
        self.spans.complete(name, start_ns, dur_ns, attrs);
    }

    /// Records a zero-duration instant event (e.g. a sampled simulator
    /// round, a recovery retry).
    pub fn instant(&self, name: &str, attrs: Vec<(String, String)>) {
        self.spans.instant(name, self.now_ns(), attrs);
    }

    /// Snapshot of the span ring, oldest first.
    #[must_use]
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.snapshot()
    }

    /// Events evicted from the ring because it was full.
    #[must_use]
    pub fn dropped_spans(&self) -> u64 {
        self.spans.dropped()
    }

    /// Clears the span ring and every registered metric value (names
    /// and handles survive). Benches use this between measured regions.
    pub fn clear(&self) {
        self.spans.clear();
        self.registry.clear_values();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// `true` iff the global plane is recording. One relaxed atomic load —
/// this is the whole cost of the disabled path, so call it **before**
/// taking any timestamp or building any attribute.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global [`Telemetry`] instance (created on first use). Reading
/// exports through it is fine while disabled; recording sites should
/// guard with [`enabled`] instead of calling this unconditionally.
#[must_use]
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(Telemetry::new)
}

/// Switches the global plane on and returns it.
pub fn enable() -> &'static Telemetry {
    let t = global();
    ENABLED.store(true, Ordering::SeqCst);
    t
}

/// Switches the global plane off — the default state. Already-recorded
/// spans and metric values survive until [`Telemetry::clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Runs `f` against the global plane iff it is enabled; `None`
/// otherwise. The canonical instrumentation-site shape:
///
/// ```
/// let span = congest_telemetry::with(|t| t.span_start("phase"));
/// // ... work ...
/// if let Some(id) = span {
///     congest_telemetry::global().span_end(id);
/// }
/// ```
#[inline]
pub fn with<R>(f: impl FnOnce(&'static Telemetry) -> R) -> Option<R> {
    if enabled() {
        Some(f(global()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global ENABLED flag is process-wide, so every test touching it
    // runs under this lock to stay order-independent.
    static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_with_records_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        disable();
        assert!(!enabled());
        assert_eq!(with(|_| 1), None);
    }

    #[test]
    fn enable_records_spans_and_metrics() {
        let _g = TEST_LOCK.lock().unwrap();
        let t = enable();
        t.clear();
        let id = t.span_start("outer");
        t.instant("tick", vec![("round".into(), "3".into())]);
        t.span_end_with(id, vec![("rounds".into(), "10".into())]);
        t.registry().counter("test.hits").add(2);
        let spans = t.spans();
        disable();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].kind, SpanKind::Begin);
        assert_eq!(spans[1].kind, SpanKind::Instant);
        assert_eq!(spans[2].kind, SpanKind::End);
        assert!(spans[2].ts_ns >= spans[0].ts_ns, "monotonic timestamps");
        assert_eq!(spans[0].tid, spans[2].tid);
        assert_eq!(t.registry().counter("test.hits").get(), 2);
        t.clear();
        assert!(t.spans().is_empty());
        assert_eq!(t.registry().counter("test.hits").get(), 0);
    }

    #[test]
    fn complete_span_carries_duration() {
        let _g = TEST_LOCK.lock().unwrap();
        let t = enable();
        t.clear();
        t.complete_span("phase-x", 100, 40, vec![("k".into(), "v".into())]);
        let spans = t.spans();
        disable();
        assert_eq!(spans.len(), 1);
        assert_eq!((spans[0].ts_ns, spans[0].dur_ns), (100, 40));
        assert_eq!(spans[0].kind, SpanKind::Complete);
        assert_eq!(spans[0].attrs, vec![("k".to_string(), "v".to_string())]);
    }
}
