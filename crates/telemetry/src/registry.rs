//! Named metric registry: counters, gauges, histograms.
//!
//! The name → handle map is behind a mutex, but that lock is only taken
//! at *registration* (and export). Hot paths hold an
//! `Arc<Counter>`/`Arc<Histogram>` handle and update plain atomics —
//! lock-free, no coordination between recording threads. Maps are
//! ordered, so exports are deterministic.

use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (cache sizes, resident counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Ordered name → metric maps; see the module docs for the locking
/// story.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    /// Cache the handle in hot code; this call locks the name map.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.counters.lock().expect("registry poisoned");
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The gauge registered under `name` (created on first use).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.gauges.lock().expect("registry poisoned");
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// The histogram registered under `name` (created on first use).
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.hists.lock().expect("registry poisoned");
        Arc::clone(m.entry(name.to_string()).or_default())
    }

    /// Name-ordered snapshot of all counters.
    #[must_use]
    pub fn counters(&self) -> Vec<(String, u64)> {
        let m = self.counters.lock().expect("registry poisoned");
        m.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Name-ordered snapshot of all gauges.
    #[must_use]
    pub fn gauges(&self) -> Vec<(String, i64)> {
        let m = self.gauges.lock().expect("registry poisoned");
        m.iter().map(|(k, v)| (k.clone(), v.get())).collect()
    }

    /// Name-ordered handles to all histograms.
    #[must_use]
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        let m = self.hists.lock().expect("registry poisoned");
        m.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
    }

    /// Zeroes every metric *value*; names and outstanding handles stay
    /// valid (a cached `Arc<Counter>` keeps counting into the same cell).
    pub fn clear_values(&self) {
        for (_, c) in self.counters.lock().expect("registry poisoned").iter() {
            c.0.store(0, Ordering::Relaxed);
        }
        for (_, g) in self.gauges.lock().expect("registry poisoned").iter() {
            g.0.store(0, Ordering::Relaxed);
        }
        for (_, h) in self.hists.lock().expect("registry poisoned").iter() {
            h.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_cleared_in_place() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        r.gauge("g").set(-3);
        r.histogram("h").record(9);
        assert_eq!(r.gauges(), vec![("g".to_string(), -3)]);
        r.clear_values();
        assert_eq!(a.get(), 0, "cached handle sees the cleared cell");
        assert_eq!(r.gauge("g").get(), 0);
        assert_eq!(r.histogram("h").count(), 0);
        a.inc();
        assert_eq!(r.counter("x").get(), 1);
    }

    #[test]
    fn snapshots_are_name_ordered() {
        let r = Registry::new();
        r.counter("zz").inc();
        r.counter("aa").inc();
        let names: Vec<String> = r.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }
}
