//! Structured trace spans in a bounded in-memory ring.
//!
//! Instrumentation sites record begin/end pairs, pre-timed complete
//! spans, or instant events; each event carries a monotonic nanosecond
//! timestamp, a logical thread id, and `key=value` attributes. The ring
//! holds the most recent [`DEFAULT_RING_CAPACITY`] events — a run that
//! overflows it keeps the tail and counts the evictions
//! ([`SpanRing::dropped`]) instead of growing without bound.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default bound on buffered span events.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Identifies an open span; returned by `span_start`, consumed by
/// `span_end`. Begin and end events share this id in exports.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// What a [`SpanEvent`] marks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Span opened (`ts_ns` = start).
    Begin,
    /// Span closed (`ts_ns` = end; matched to its Begin via the id).
    End,
    /// Pre-timed span (`ts_ns` = start, `dur_ns` = length).
    Complete,
    /// Zero-duration marker.
    Instant,
}

/// One record in the trace ring.
#[derive(Clone, Debug)]
pub struct SpanEvent {
    /// Span or marker name. Empty on [`SpanKind::End`] events (the id
    /// links them to their begin event).
    pub name: String,
    /// Event kind.
    pub kind: SpanKind,
    /// Monotonic nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Duration, [`SpanKind::Complete`] only (0 otherwise).
    pub dur_ns: u64,
    /// Logical id of the recording thread (small dense integers, first
    /// recording thread = 1).
    pub tid: u64,
    /// Id linking Begin/End pairs; 0 for Complete/Instant events.
    pub id: u64,
    /// `key=value` annotations.
    pub attrs: Vec<(String, String)>,
}

/// Logical thread ids: dense, deterministic within a thread, cheap.
fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// The bounded event buffer behind [`crate::Telemetry`].
pub struct SpanRing {
    capacity: usize,
    events: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
    next_id: AtomicU64,
}

impl SpanRing {
    /// A ring holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SpanRing {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
        }
    }

    fn push(&self, ev: SpanEvent) {
        let mut q = self.events.lock().expect("span ring poisoned");
        if q.len() == self.capacity {
            q.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(ev);
    }

    /// Records a begin event and returns the id for its end event.
    pub fn start(&self, name: &str, ts_ns: u64) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.push(SpanEvent {
            name: name.to_string(),
            kind: SpanKind::Begin,
            ts_ns,
            dur_ns: 0,
            tid: current_tid(),
            id,
            attrs: Vec::new(),
        });
        SpanId(id)
    }

    /// Records the end event for `id`.
    pub fn end(&self, id: SpanId, ts_ns: u64, attrs: Vec<(String, String)>) {
        self.push(SpanEvent {
            name: String::new(),
            kind: SpanKind::End,
            ts_ns,
            dur_ns: 0,
            tid: current_tid(),
            id: id.0,
            attrs,
        });
    }

    /// Records a pre-timed complete span.
    pub fn complete(&self, name: &str, ts_ns: u64, dur_ns: u64, attrs: Vec<(String, String)>) {
        self.push(SpanEvent {
            name: name.to_string(),
            kind: SpanKind::Complete,
            ts_ns,
            dur_ns,
            tid: current_tid(),
            id: 0,
            attrs,
        });
    }

    /// Records an instant marker.
    pub fn instant(&self, name: &str, ts_ns: u64, attrs: Vec<(String, String)>) {
        self.push(SpanEvent {
            name: name.to_string(),
            kind: SpanKind::Instant,
            ts_ns,
            dur_ns: 0,
            tid: current_tid(),
            id: 0,
            attrs,
        });
    }

    /// Buffered events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.events.lock().expect("span ring poisoned").iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Empties the ring (the eviction counter resets too).
    pub fn clear(&self) {
        self.events.lock().expect("span ring poisoned").clear();
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let r = SpanRing::new(3);
        for i in 0..5u64 {
            r.instant(&format!("e{i}"), i, Vec::new());
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "e2", "oldest events evicted first");
        assert_eq!(r.dropped(), 2);
        r.clear();
        assert!(r.snapshot().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn begin_end_share_an_id() {
        let r = SpanRing::new(16);
        let a = r.start("a", 10);
        let b = r.start("b", 11);
        r.end(b, 20, Vec::new());
        r.end(a, 30, Vec::new());
        assert_ne!(a, b);
        let snap = r.snapshot();
        assert_eq!(snap[0].id, snap[3].id);
        assert_eq!(snap[1].id, snap[2].id);
    }
}
