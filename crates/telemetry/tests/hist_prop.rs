//! Property tests for the log-bucketed histogram: merging per-thread
//! histograms must be indistinguishable from one histogram fed the
//! concatenated samples, and quantiles must stay inside the documented
//! `(1 + 2^-SUB_BITS)` relative error bound.

use congest_telemetry::hist::SUB_BITS;
use congest_telemetry::Histogram;
use proptest::prelude::*;

/// Exact rank-⌈q·n⌉ order statistic of `sorted`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QS: [f64; 5] = [0.25, 0.5, 0.9, 0.99, 0.999];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Split a sample set across k "thread-local" histograms, merge
    /// them, and compare against one histogram fed everything: every
    /// observable (count, sum, max, buckets, quantiles) must match
    /// exactly.
    #[test]
    fn merged_shards_match_concatenation(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
        shards in 2usize..6,
    ) {
        let combined = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &s) in samples.iter().enumerate() {
            combined.record(s);
            parts[i % shards].record(s);
        }
        let merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), combined.count());
        prop_assert_eq!(merged.sum(), combined.sum());
        prop_assert_eq!(merged.max(), combined.max());
        prop_assert_eq!(merged.nonzero_buckets(), combined.nonzero_buckets());
        for q in QS {
            prop_assert_eq!(merged.quantile(q), combined.quantile(q));
        }
    }

    /// Reported quantiles bracket the exact order statistic from above
    /// within the documented bucket-resolution bound.
    #[test]
    fn quantile_error_within_documented_bound(
        samples in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QS {
            let exact = exact_quantile(&sorted, q);
            let got = h.quantile(q);
            prop_assert!(got >= exact, "q={}: reported {} below exact {}", q, got, exact);
            // got ≤ exact · (1 + 2^-SUB_BITS), integer-safe form.
            let slack = (exact >> SUB_BITS) + 1;
            prop_assert!(
                got <= exact.saturating_add(slack),
                "q={}: reported {} exceeds exact {} + slack {}", q, got, exact, slack
            );
        }
    }

    /// Values below the sub-bucket threshold are stored exactly, so
    /// quantiles over small samples are the true order statistics.
    #[test]
    fn small_values_have_exact_quantiles(
        samples in proptest::collection::vec(0u64..(1u64 << SUB_BITS), 1..200),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in QS {
            prop_assert_eq!(h.quantile(q), exact_quantile(&sorted, q));
        }
    }
}
