//! Offline vendor stub of `criterion`.
//!
//! Provides the API shape the workspace's benches use — [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], the
//! [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`] — over
//! a plain wall-clock harness: a warm-up pass sizes the batch, then
//! `sample_size` timed samples produce min/median/mean statistics printed in
//! a criterion-like format. No plotting, no statistical regression analysis.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, e.g. `name/42`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Per-iteration timing callback holder.
pub struct Bencher {
    /// Median/mean/min of the collected samples, filled by [`Bencher::iter`].
    result: Option<Stats>,
    sample_size: usize,
    measurement_time: Duration,
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Iterations per timed sample.
    pub iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, criterion-style: warm up, pick a batch size so one
    /// sample takes ≳1 ms, then collect `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + batch sizing: run until 10 ms of work or 100 iters.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(10) && warmup_iters < 100 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let min_ns = samples[0];
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<f64>() / samples.len() as f64;
        self.result = Some(Stats { min_ns, median_ns, mean_ns, iters_per_sample: iters });
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return;
        }
        let mut b = Bencher {
            result: None,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        match b.result {
            Some(s) => {
                println!(
                    "{full:<48} time: [{} {} {}]  ({} iters/sample)",
                    fmt_ns(s.min_ns),
                    fmt_ns(s.median_ns),
                    fmt_ns(s.mean_ns),
                    s.iters_per_sample
                );
                self.criterion.results.push((full, s));
            }
            None => println!("{full:<48} (no measurement: Bencher::iter never called)"),
        }
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run(id.as_ref(), f);
        self
    }

    /// Benchmarks `f` with an input value under a parameterized id.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing already happened per benchmark).
    pub fn finish(self) {}
}

/// Top-level harness handle.
pub struct Criterion {
    filter: Option<String>,
    /// All `(name, stats)` results collected so far, for programmatic use.
    pub results: Vec<(String, Stats)>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks; harness flags
        // cargo passes (e.g. --bench) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, results: Vec::new() }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Opens a benchmark group named `name`.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks `f` as a stand-alone (group-less) benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: "bench".into(),
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        };
        group.run(id.as_ref(), f);
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion { filter: None, results: Vec::new() };
        let mut group = c.benchmark_group("g");
        group.sample_size(3).measurement_time(Duration::from_millis(5));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1.median_ns >= 0.0);
    }

    #[test]
    fn benchmark_id_format() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.id, "f/42");
    }

    #[test]
    fn filter_skips() {
        let mut c = Criterion { filter: Some("nomatch".into()), results: Vec::new() };
        let mut group = c.benchmark_group("g");
        group.bench_function("skipped", |b| b.iter(|| 1));
        group.finish();
        assert!(c.results.is_empty());
    }
}
