//! Offline vendor stub of `proptest`.
//!
//! Implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro (with `#![proptest_config(..)]`, `x in
//! strategy` and `x: type` parameters), range and tuple strategies,
//! [`collection::vec`], `any::<T>()`, and the `prop_assert*` /
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed schedule (stable across runs and platforms, good for
//! CI), and failing inputs are reported but not shrunk.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Outcome of one generated case: `Err` carries the failure message,
/// `Ok(false)` means the case was discarded by [`prop_assume!`].
pub type CaseResult = Result<bool, String>;

/// Deterministic SplitMix64 source driving the strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    #[must_use]
    pub fn new(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator. Strategies are sampled fresh for every case.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Strategy for any value of a type with a canonical distribution.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical whole-type strategy (`any::<bool>()`, ...).
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy of [`any::<bool>()`](any): fair coin.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $s:ident),*) => {$(
        /// Strategy of `any::<$t>()`: uniform over the full range.
        #[derive(Clone, Copy, Debug)]
        pub struct $s;
        impl Strategy for $s {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = $s;
            fn arbitrary() -> $s { $s }
        }
    )*};
}

impl_arbitrary_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open range.
    pub trait IntoSizeRange {
        /// Convert to a half-open range of lengths.
        fn into_size_range(self) -> Range<usize>;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> Range<usize> {
            self..self + 1
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> Range<usize> {
            self
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy { element, size: size.into_size_range() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Drives one property test: runs `config.cases` generated cases, panicking
/// on the first failure with the case's seed and bound values.
pub fn run_property_test(
    test_name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> (Vec<String>, CaseResult),
) {
    let mut executed: u32 = 0;
    let mut attempts: u64 = 0;
    // Discarded cases (prop_assume!) don't count toward `cases`, but bail
    // out if the assumption rejects nearly everything.
    let max_attempts = u64::from(config.cases) * 16 + 64;
    while executed < config.cases && attempts < max_attempts {
        let mut rng = TestRng::new(test_name, attempts);
        attempts += 1;
        let (bindings, outcome) = case(&mut rng);
        match outcome {
            Ok(true) => executed += 1,
            Ok(false) => {}
            Err(msg) => {
                panic!(
                    "proptest '{test_name}' failed at case {} (seed {}):\n  {}\n  with inputs:\n    {}",
                    executed,
                    attempts - 1,
                    msg,
                    bindings.join("\n    "),
                );
            }
        }
    }
}

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case's
/// inputs are reported and the test panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
            stringify!($a),
            stringify!($b),
            left,
            right
        );
    }};
}

/// Asserts two expressions differ inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(false);
        }
    };
}

/// Binds the parameter list of one property-test case. Each parameter is
/// either `name in strategy` or `name: Type` (which uses `any::<Type>()`).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $vals:ident;) => {};
    ($rng:ident, $vals:ident; $name:ident in $strategy:expr) => {
        $crate::__proptest_bind!($rng, $vals; $name in $strategy,);
    };
    ($rng:ident, $vals:ident; $name:ident in $strategy:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::sample(&($strategy), $rng);
        $vals.push(format!("{} = {:?}", stringify!($name), $name));
        $crate::__proptest_bind!($rng, $vals; $($rest)*);
    };
    ($rng:ident, $vals:ident; $name:ident : $ty:ty) => {
        $crate::__proptest_bind!($rng, $vals; $name : $ty,);
    };
    ($rng:ident, $vals:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Strategy::sample(&$crate::any::<$ty>(), $rng);
        $vals.push(format!("{} = {:?}", stringify!($name), $name));
        $crate::__proptest_bind!($rng, $vals; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $($(#[$meta:meta])* fn $name:ident ($($params:tt)*) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_property_test(stringify!($name), &__config, |__rng| {
                let mut __vals: Vec<String> = Vec::new();
                $crate::__proptest_bind!(__rng, __vals; $($params)*);
                // The body runs in a closure returning `CaseResult`;
                // prop_assert!/prop_assume! return early from it, and plain
                // assert!/panic! unwind as usual.
                let __outcome = (|| -> $crate::CaseResult {
                    $body
                    Ok(true)
                })();
                (__vals, __outcome)
            });
        }
    )*};
}

/// The property-test entry macro, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u64..10, b in 0usize..=4, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(b <= 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn type_params_and_tuples(flag: bool, pair in (0u32..5, 10u64..20)) {
            let _ = flag;
            prop_assert!(pair.0 < 5);
            prop_assert!((10..20).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec((0usize..3, 0u32..7), 0..10)) {
            prop_assert!(v.len() < 10);
            for (a, b) in v {
                prop_assert!(a < 3 && b < 7);
            }
        }

        #[test]
        fn assume_discards(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(n in 0u64..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_schedule() {
        let mut a = crate::TestRng::new("t", 3);
        let mut b = crate::TestRng::new("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
