//! Offline vendor stub of the `rand` crate.
//!
//! The build environment has no registry access, so this crate provides the
//! minimal, API-compatible subset of `rand` 0.8 that the workspace actually
//! uses: [`RngCore`], [`Rng::gen_range`] / [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`SliceRandom::shuffle`]. The only
//! concrete generator lives in the sibling `rand_chacha` stub.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi]`; panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// `self - 1`; only called on the excluded end of a non-empty range,
    /// so it cannot underflow.
    fn prev(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                // All supported types are <= 64 bits, so the inclusive span
                // fits in u128 and the widening multiply maps a 64-bit draw
                // onto it with bias < 2^-64 per draw.
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
            fn prev(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(self.start, self.end.prev(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding via SplitMix64 exactly like
    /// `rand_core`'s default, so seeded streams are platform-stable.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// In-place uniform shuffling of slices (Fisher–Yates).
pub trait SliceRandom {
    /// Shuffle the slice uniformly at random.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_inclusive(0, i, rng);
            self.swap(i, j);
        }
    }
}

/// The commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SampleRange, SampleUniform, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weak but sufficient for range-math tests.
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: usize = rng.gen_range(0..=5);
            assert!(b <= 5);
            let c: u64 = rng.gen_range(3..=3);
            assert_eq!(c, 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
