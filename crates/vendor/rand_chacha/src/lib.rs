//! Offline vendor stub of `rand_chacha`: a genuine ChaCha8 stream RNG.
//!
//! The workspace's generators only rely on ChaCha8 being a *deterministic,
//! platform-stable, well-mixed* stream seeded via `seed_from_u64`; this
//! implements the standard ChaCha block function (8 double-rounds) over the
//! local `rand` stub's traits. Streams are not guaranteed bit-identical to
//! the upstream crate, only self-consistent.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 256-bit key, 64-bit counter, nonce.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column rounds + 4 diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter = 0 (words 12-13), nonce = 0 (words 14-15)
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let sa: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn words_look_mixed() {
        // Weak sanity check: bits are roughly balanced over a long stream.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1024).map(|_| rng.next_u64().count_ones()).sum();
        let total = 1024 * 64;
        assert!((ones as f64) > 0.47 * total as f64 && (ones as f64) < 0.53 * total as f64);
    }

    #[test]
    fn counter_crosses_block_boundary() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
