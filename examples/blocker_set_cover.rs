//! The blocker-set machinery as a standalone tool (§3 of the paper): build
//! an h-CSSSP on a hop-deep workload, construct blocker sets with all
//! three algorithms (greedy [2], randomized Algorithm 2, derandomized
//! Algorithm 2′) and compare sizes, rounds and the Lemma 3.8–3.10
//! counters — plus the sequential Berger–Rompel–Shor set cover on the
//! exported hypergraph as a sanity oracle.
//!
//! ```text
//! cargo run --release --example blocker_set_cover
//! ```

use congest_apsp::blocker::{alg2_blocker, greedy_blocker, is_valid_blocker, PathCtx, Selection};
use congest_apsp::config::{BlockerParams, Charging};
use congest_apsp::csssp::build_csssp;
use congest_derand::{brs_cover, greedy_cover, verify_cover, BrsParams};
use congest_graph::generators::{broom, WeightDist};
use congest_graph::seq::Direction;
use congest_graph::NodeId;
use congest_sim::{Recorder, SimConfig, Topology};

fn main() {
    // A broom graph keeps shortest paths hop-deep, so full-length h-hop
    // paths (the hyperedges) actually exist.
    let n = 40;
    let h = 4;
    let g = broom(n, true, WeightDist::Uniform(1, 9), 7);
    let topo = Topology::from_graph(&g);
    let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let mut rec = Recorder::new();
    let coll = build_csssp(
        &g,
        &topo,
        &sources,
        h,
        Direction::Out,
        false,
        SimConfig::default(),
        Charging::Quiesce,
        &mut rec,
        &mut congest_apsp::Recovery::disabled(),
        "csssp",
    )
    .unwrap();
    let (ctx, _) = PathCtx::build(&topo, SimConfig::default(), &coll).unwrap();
    println!("workload: broom n={n}, h={h}: {} full-length paths to cover\n", ctx.alive_count());

    // Greedy baseline of [2].
    let mut grec = Recorder::new();
    let gres = greedy_blocker(&topo, SimConfig::default(), &coll, &mut grec).unwrap();
    assert!(is_valid_blocker(&coll, &gres.q));
    println!("greedy [2]          : |Q| = {:2}, rounds = {:6}", gres.q.len(), grec.total_rounds());

    // Randomized Algorithm 2.
    let mut rrec = Recorder::new();
    let (rres, rstats) = alg2_blocker(
        &topo,
        SimConfig::default(),
        &coll,
        BlockerParams::default(),
        Selection::Randomized { seed: 1 },
        &mut rrec,
    )
    .unwrap();
    assert!(is_valid_blocker(&coll, &rres.q));
    println!(
        "Algorithm 2  (rand) : |Q| = {:2}, rounds = {:6}, selection steps = {}, singleton/set = {}/{}",
        rres.q.len(),
        rrec.total_rounds(),
        rstats.selection_steps,
        rstats.singleton_picks,
        rstats.set_picks
    );

    // Derandomized Algorithm 2′.
    let mut drec = Recorder::new();
    let (dres, dstats) = alg2_blocker(
        &topo,
        SimConfig::default(),
        &coll,
        BlockerParams::default(),
        Selection::Derandomized,
        &mut drec,
    )
    .unwrap();
    assert!(is_valid_blocker(&coll, &dres.q));
    println!(
        "Algorithm 2' (det)  : |Q| = {:2}, rounds = {:6}, selection steps = {}, sample points = {}",
        dres.q.len(),
        drec.total_rounds(),
        dstats.selection_steps,
        dstats.sample_points_examined
    );

    // Sequential oracles on the same hypergraph.
    let hg = ctx.hypergraph(g.n());
    let sg = greedy_cover(&hg);
    let (sb, _) = brs_cover(&hg, BrsParams::default(), congest_derand::Selection::Derandomized);
    assert!(verify_cover(&hg, &sg) && verify_cover(&hg, &sb));
    println!("\nsequential oracles  : greedy cover = {}, BRS cover = {}", sg.len(), sb.len());
    println!(
        "\nLemma 3.10 bound    : O(n ln p / h) = {:.1} (p = {} paths)",
        (n as f64) * (ctx.alive_count().max(2) as f64).ln() / h as f64,
        ctx.alive_count()
    );
}
