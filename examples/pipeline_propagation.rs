//! Step 6 in isolation — the reversed q-sink shortest paths problem (§4):
//! deliver δ(x, c) from every source x to every blocker c, comparing the
//! paper's pipelined Algorithms 8+9 against the trivial Õ(n^{5/3})
//! all-broadcast, and showing the bottleneck-pruning congestion drop
//! (Lemma A.15) and the round-robin progress measure (Lemma 4.8).
//!
//! ```text
//! cargo run --release --example pipeline_propagation
//! ```

use congest_apsp::config::BlockerParams;
use congest_apsp::pipeline::{propagate_to_blockers, propagate_trivial_broadcast, RoutedTable};
use congest_apsp::ApspConfig;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::{apsp_dijkstra, dijkstra, Direction};
use congest_graph::{DistMatrix, NodeId};
use congest_sim::{Recorder, SimConfig, Topology};

fn main() {
    let n = 64;
    let g = gnm_connected(n, 3 * n, true, WeightDist::Uniform(0, 50), 11);
    let topo = Topology::from_graph(&g);
    let cfg = ApspConfig::default();

    // Pick every 5th node as a blocker and feed oracle-exact δ(x,c) values
    // (in the full algorithm these come from Step 5).
    let q: Vec<NodeId> = (0..n as NodeId).step_by(5).collect();
    let exact = apsp_dijkstra(&g);
    let dvals = RoutedTable::untracked(DistMatrix::from_rows(
        (0..n).map(|x| q.iter().map(|&c| exact[x][c as usize]).collect()).collect(),
    ));
    println!("n = {n}, |Q| = {} blockers, {} (x, c) values to deliver\n", q.len(), n * q.len());

    // Paper pipeline (Algorithms 8 + 9).
    let mut rec = Recorder::new();
    let (out, stats) =
        propagate_to_blockers(&g, &topo, &cfg, BlockerParams::default(), &q, &dvals, &mut rec)
            .unwrap();
    for (qi, &c) in q.iter().enumerate() {
        let oracle = dijkstra(&g, c, Direction::In);
        assert_eq!(&out.dist[qi], &oracle[..], "delivery to blocker {c} incomplete");
    }
    println!("pipelined (Alg 8+9) : rounds = {:6}  ✓ all values delivered", rec.total_rounds());
    println!(
        "  |Q'| = {}, |B| = {}, congestion {} -> {} (threshold n*sqrt(|Q|) = {})",
        stats.q_prime_size,
        stats.b_size,
        stats.congestion_before,
        stats.congestion_after,
        (n as f64 * (q.len() as f64).sqrt()).ceil() as u64
    );
    println!(
        "  round-robin push: {} rounds, {} message-hops",
        stats.round_robin_rounds, stats.round_robin_messages
    );
    println!("  Lemma 4.8 progress (round -> max #active blocker queues per node):");
    for (round, active) in &stats.progress {
        println!("    round {round:>6}: {active}");
    }

    // Trivial broadcast strawman.
    let mut trec = Recorder::new();
    let tout =
        propagate_trivial_broadcast(&topo, SimConfig::default(), &q, &dvals, &mut trec).unwrap();
    assert_eq!(tout.dist, out.dist);
    println!("\ntrivial broadcast   : rounds = {:6}", trec.total_rounds());
    let ratio = trec.total_rounds() as f64 / rec.total_rounds() as f64;
    if ratio >= 1.0 {
        println!("\npipeline wins: {ratio:.2}x fewer rounds than the trivial broadcast");
    } else {
        println!(
            "\nat this small n the trivial broadcast is still {:.2}x cheaper — n·|Q| values \
             are few, while the pipeline pays its fixed substrate (CSSSP + relay SSSPs); \
             the pipeline's congestion bound (above) is what makes it win at scale \
             (see EXPERIMENTS.md T3)",
            1.0 / ratio
        );
    }
}
