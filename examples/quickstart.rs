//! Quickstart: run the paper's deterministic Õ(n^{4/3})-round APSP on a
//! random weighted digraph, verify it against Dijkstra, and print the
//! phase-by-phase round accounting.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use congest_apsp::Solver;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;

fn main() {
    let n = 48;
    let g = gnm_connected(n, 3 * n, true, WeightDist::Uniform(0, 100), 2026);
    println!("graph: n = {}, m = {}, directed = {}\n", g.n(), g.m(), g.is_directed());

    // The paper's deterministic configuration is the Solver default.
    let out = Solver::builder(&g).run().expect("simulation is a legal CONGEST protocol");

    // Verify exactness against the sequential oracle.
    let oracle = apsp_dijkstra(&g);
    assert_eq!(out.dist, oracle, "distributed APSP must be exact");
    println!("exactness: all {}x{} distances match Dijkstra ✓", n, n);
    println!(
        "h = {}, |Q| = {}, total rounds = {}\n",
        out.meta.h,
        out.meta.q.len(),
        out.recorder.total_rounds()
    );

    // Condensed phase table (top phases by rounds).
    let mut phases: Vec<_> = out.recorder.phases().iter().collect();
    phases.sort_by_key(|p| std::cmp::Reverse(p.rounds));
    println!("{:<52} {:>8} {:>12}", "top phases", "rounds", "messages");
    for p in phases.iter().take(12) {
        println!("{:<52} {:>8} {:>12}", p.name, p.rounds, p.messages);
    }

    // A few sample distances.
    println!("\nsample distances from node 0:");
    for t in [1usize, n / 2, n - 1] {
        println!("  δ(0, {t}) = {}", out.dist[0][t]);
    }
}
