//! Mini scaling study (the Table-1 experiment at example scale): measured
//! rounds of the paper's algorithm vs the Õ(n^{3/2}) baseline and naive
//! per-source Bellman–Ford, with fitted log-log exponents.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```
//!
//! The full sweep with CSV output lives in the bench crate:
//! `cargo run -p congest-bench --release --bin experiments -- t1`.

use congest_apsp::{Algorithm, Solver};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;

fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let k = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (k * sxy - sx * sy) / (k * sxx - sx * sx)
}

fn main() {
    let ns = [24usize, 40, 56, 80, 104];
    let mut rows: Vec<(usize, u64, u64, u64)> = Vec::new();
    println!(
        "{:>5} {:>12} {:>12} {:>12}   (measured rounds, quiescence charging)",
        "n", "this-paper", "AR18 n^1.5", "naive"
    );
    for &n in &ns {
        let g = gnm_connected(n, 3 * n, true, WeightDist::Uniform(0, 100), 99);
        let paper = Solver::builder(&g).run().unwrap();
        let ar18 = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
        let naive = Solver::builder(&g).algorithm(Algorithm::Naive).run().unwrap();
        let oracle = apsp_dijkstra(&g);
        assert!(paper.dist == oracle && ar18.dist == oracle && naive.dist == oracle);
        let row = (
            n,
            paper.recorder.total_rounds(),
            ar18.recorder.total_rounds(),
            naive.recorder.total_rounds(),
        );
        println!("{:>5} {:>12} {:>12} {:>12}", row.0, row.1, row.2, row.3);
        rows.push(row);
    }
    let series = |f: fn(&(usize, u64, u64, u64)) -> u64| -> f64 {
        fit_exponent(&rows.iter().map(|r| (r.0 as f64, f(r) as f64)).collect::<Vec<_>>())
    };
    println!("\nfitted log-log exponents (paper bounds: 4/3, 3/2, 2):");
    println!(
        "  this-paper : {:.2}  (Õ(n^4/3); polylog factors inflate small-n fits)",
        series(|r| r.1)
    );
    println!("  AR18-style : {:.2}  (Õ(n^3/2))", series(|r| r.2));
    println!("  naive      : {:.2}  (O(n^2))", series(|r| r.3));
}
