//! The full compute → snapshot → serve vertical slice:
//!
//! 1. run the paper's deterministic Õ(n^{4/3})-round CONGEST APSP,
//! 2. compact the result into a `congest_oracle::Oracle`, save it as a
//!    versioned binary snapshot and load it back,
//! 3. serve concurrent distance / route / k-nearest queries through the
//!    sharded `QueryEngine` and report throughput + cache behaviour.
//!
//! ```text
//! cargo run --release --example serve_queries
//! ```
//!
//! Sized to finish in seconds (it runs in CI); `cargo bench -p
//! congest_bench --bench oracle` is the serious throughput measurement.

use congest_apsp::Solver;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::NodeId;
use congest_oracle::{EngineConfig, IntoOracle, Oracle, QueryEngine};
use std::sync::Arc;
use std::time::Instant;

const N: usize = 64;
const WORKERS: usize = 4;
const QUERIES_PER_WORKER: u64 = 100_000;

fn main() {
    // ---- 1. compute -------------------------------------------------
    let g = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), 2026);
    println!("graph: n = {}, m = {}, directed", g.n(), g.m());
    let t = Instant::now();
    let out = Solver::builder(&g).run().expect("legal CONGEST protocol");
    println!(
        "apsp: {} rounds simulated in {:.2?} (h = {}, |Q| = {})",
        out.recorder.total_rounds(),
        t.elapsed(),
        out.meta.h,
        out.meta.q.len()
    );

    // ---- 2. snapshot ------------------------------------------------
    // `into_oracle` moves the n² distance arena out of the outcome — the
    // compute → serve boundary performs no per-row allocation and no copy.
    let oracle = out.into_oracle(&g);
    let path = std::env::temp_dir().join("serve_queries_demo.oracle");
    oracle.save(&path).expect("snapshot write");
    let loaded = Oracle::<u64>::load(&path).expect("snapshot read");
    assert_eq!(oracle, loaded, "snapshot must round-trip bit-identically");
    let size = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("snapshot: {size} bytes written to {} and restored", path.display());
    std::fs::remove_file(&path).ok();

    // ---- 3. serve ---------------------------------------------------
    let engine =
        QueryEngine::new(Arc::new(loaded), EngineConfig { shards: 8, cache_per_shard: 512 });
    let route =
        engine.path(0, (N - 1) as NodeId).expect("in range").expect("gnm_connected is connected");
    let d = engine.dist(0, (N - 1) as NodeId).expect("in range").expect("connected");
    println!("sample: δ(0, {}) = {d} via {} hops {:?}", N - 1, route.len() - 1, route);
    let near = engine.k_nearest(0, 5).expect("in range");
    println!("5 nearest to node 0: {near:?}");

    let t = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let engine = &engine;
            scope.spawn(move || {
                let mut state = 0x1234_5678u64 + w as u64;
                for i in 0..QUERIES_PER_WORKER {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state % N as u64) as NodeId;
                    let v = ((state >> 32) % N as u64) as NodeId;
                    if i % 4 == 0 {
                        let _ = engine.path(u, v).expect("in range");
                    } else {
                        let _ = engine.dist(u, v).expect("in range");
                    }
                }
            });
        }
    });
    let secs = t.elapsed().as_secs_f64();
    let total = WORKERS as u64 * QUERIES_PER_WORKER;
    let stats = engine.cache_stats();
    println!(
        "served {total} queries from {WORKERS} threads in {secs:.3}s ({:.2} M queries/sec)",
        total as f64 / secs / 1e6
    );
    println!(
        "path cache: {} hits / {} misses, {} paths resident across {} shards",
        stats.hits,
        stats.misses,
        engine.cached_paths(),
        engine.shard_count()
    );
}
