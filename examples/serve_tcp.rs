//! End-to-end tour of the network serving front-end:
//!
//! 1. compute APSP with the paper's deterministic CONGEST pipeline and
//!    save the oracle as a binary snapshot,
//! 2. serve it over loopback TCP (`congest_serve::Server`) with the
//!    snapshot-file watcher enabled,
//! 3. query it through `congest_serve::Client` — single calls and a
//!    pipelined batch (one write, one read, many answers),
//! 4. hot-swap the snapshot twice — once via the `Reload` control frame,
//!    once by rewriting the file and letting the mtime watcher pick it
//!    up — while the connection keeps serving,
//! 5. shut down gracefully (drain, close, join).
//!
//! ```text
//! cargo run --release --example serve_tcp
//! ```

use congest_apsp::Solver;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_oracle::IntoOracle;
use congest_serve::{Client, Server, ServerConfig};
use std::time::{Duration, Instant};

const N: usize = 48;

fn build_and_save(seed: u64, path: &std::path::Path) {
    let g = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), seed);
    let out = Solver::builder(&g).run().expect("legal CONGEST protocol");
    let oracle = out.into_oracle(&g);
    oracle.save(path).expect("save snapshot");
}

fn main() {
    let snap = std::env::temp_dir().join("congest_serve_tcp_demo.snap");

    // ---- 1. compute + snapshot -------------------------------------
    let t = Instant::now();
    build_and_save(2026, &snap);
    println!("snapshot: {} ({:.2?})", snap.display(), t.elapsed());

    // ---- 2. serve ---------------------------------------------------
    let server = Server::bind_snapshot::<u64>(
        "127.0.0.1:0",
        &snap,
        ServerConfig { watch_interval: Some(Duration::from_millis(30)), ..ServerConfig::default() },
    )
    .expect("bind");
    println!("serving on {} (generation {})", server.local_addr(), server.generation());

    // ---- 3. query ---------------------------------------------------
    let mut client = Client::<u64>::connect(server.local_addr()).expect("connect");
    println!("handshake: n = {}, window = {}", client.n(), client.window());
    let d = client.dist(0, 7).expect("dist");
    let p = client.path(0, 7).expect("path");
    let near = client.k_nearest(0, 3).expect("k-nearest");
    println!("dist(0,7)   = {d:?}");
    println!("path(0,7)   = {p:?}");
    println!("3-nearest(0) = {near:?}");

    let mut batch = client.batch();
    for i in 0..32u32 {
        batch.dist(i % N as u32, (i * 7 + 3) % N as u32);
    }
    let t = Instant::now();
    let replies = batch.send().expect("batch");
    println!(
        "pipelined batch: {} answers in {:.2?} (one write, one drain)",
        replies.len(),
        t.elapsed()
    );

    // ---- 4a. hot swap via the Reload control frame ------------------
    build_and_save(2027, &snap);
    let gen = client.reload().expect("reload");
    println!("reload frame: now serving generation {gen}");
    assert_eq!(gen, 2);

    // ---- 4b. hot swap via the mtime watcher -------------------------
    std::thread::sleep(Duration::from_millis(5)); // ensure a fresh mtime
    build_and_save(2028, &snap);
    let deadline = Instant::now() + Duration::from_secs(10);
    let gen = loop {
        let gen = client.ping().expect("ping");
        if gen >= 3 {
            break gen;
        }
        assert!(Instant::now() < deadline, "watcher never swapped");
        std::thread::sleep(Duration::from_millis(10));
    };
    println!("mtime watcher: now serving generation {gen}");
    // The connection survived both swaps; answers still flow.
    client.dist(1, 2).expect("dist after swaps");

    // ---- 5. graceful shutdown ---------------------------------------
    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(&snap);
    println!("clean shutdown");
}
