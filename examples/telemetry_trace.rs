//! Telemetry end to end: run the solver instrumented, serve queries
//! through the sharded engine, then export and self-validate the three
//! artifacts the telemetry plane produces —
//!
//! * a Chrome trace-event JSON (`results/trace.json`, loadable in
//!   Perfetto or `chrome://tracing`) with one `X` span per recorded
//!   solver phase, named exactly like the `Recorder` phase labels;
//! * a run manifest (`results/run-*.json`) carrying schema version,
//!   graph/solver provenance, per-phase rounds / messages / payload
//!   words / wall-clock, and a metrics snapshot;
//! * a Prometheus-style text dump of the registry (printed).
//!
//! The validation uses the crate's own dependency-free JSON parser, so
//! this doubles as the CI smoke check for the exporters.
//!
//! ```text
//! cargo run --release --example telemetry_trace
//! ```

use congest_apsp::Solver;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_oracle::{EngineConfig, IntoOracle, QueryEngine};
use congest_telemetry::json::{obj, parse, Json};
use congest_telemetry::{export, Manifest};
use std::sync::Arc;

fn main() {
    congest_telemetry::enable();

    // -------- compute, instrumented --------
    let n = 48;
    let g = gnm_connected(n, 3 * n, true, WeightDist::Uniform(0, 100), 2026);
    let out = Solver::builder(&g).run().expect("legal CONGEST protocol");
    let phase_names: Vec<String> = out.recorder.phases().iter().map(|p| p.name.clone()).collect();
    let phase_rows = out.recorder.manifest_rows();
    let (h, q) = (out.meta.h, out.meta.q.len());
    let total_rounds = out.recorder.total_rounds();
    let total_wall_ns = out.recorder.total_wall_ns();

    // -------- serve, instrumented --------
    let oracle = out.into_oracle(&g);
    let engine =
        QueryEngine::new(Arc::new(oracle), EngineConfig { shards: 8, cache_per_shard: 256 });
    for u in 0..n as u32 {
        for v in [0u32, (n / 2) as u32, (n - 1) as u32] {
            let _ = engine.dist(u, v).expect("in range");
            let _ = engine.path(u, v).expect("in range");
        }
        let _ = engine.k_nearest(u, 4).expect("in range");
    }
    engine.publish_gauges();

    // -------- export --------
    let tele = congest_telemetry::global();
    let trace = export::chrome_trace(&tele.spans());
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/trace.json", &trace).expect("write trace");

    let stats = engine.cache_stats();
    let manifest = Manifest::new("solver-run")
        .field(
            "graph",
            obj(vec![
                ("n", Json::from(g.n())),
                ("m", Json::from(g.m())),
                ("directed", Json::Bool(g.is_directed())),
                ("weights", Json::from("uniform 0..100")),
                ("seed", Json::U64(2026)),
            ]),
        )
        .field(
            "solver",
            obj(vec![
                ("h", Json::from(h)),
                ("q", Json::from(q)),
                ("total_rounds", Json::U64(total_rounds)),
            ]),
        )
        .field(
            "serving",
            obj(vec![
                ("cache_hits", Json::U64(stats.hits)),
                ("cache_misses", Json::U64(stats.misses)),
                ("cache_hit_rate", Json::F64((stats.hit_rate() * 1000.0).round() / 1000.0)),
            ]),
        )
        .phases(&phase_rows)
        .metrics(tele.registry());
    let manifest_path = manifest.write_run("results").expect("write manifest");

    println!("wrote results/trace.json ({} bytes)", trace.len());
    println!("wrote {}", manifest_path.display());

    // -------- validate the Chrome trace --------
    let v = parse(&trace).expect("trace must be valid JSON");
    let events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    let complete_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    // One complete span per recorded phase entry. Names can repeat (a
    // sub-phase that runs once per iteration records one entry each
    // time), so compare occurrence counts, not set membership.
    for name in &phase_names {
        let expected = phase_names.iter().filter(|p| p == &name).count();
        let got = complete_names.iter().filter(|&&c| c == name.as_str()).count();
        assert_eq!(got, expected, "span count mismatch for phase {name:?}");
    }
    assert!(
        events.iter().any(|e| e.get("name").and_then(Json::as_str) == Some("solver.run")),
        "solver.run span missing"
    );
    println!(
        "trace OK: {} events, one complete span per recorded phase ({} phases)",
        events.len(),
        phase_names.len()
    );

    // -------- validate the run manifest --------
    let text = std::fs::read_to_string(&manifest_path).expect("read manifest back");
    let m = parse(&text).expect("manifest must be valid JSON");
    assert_eq!(
        m.get("schema_version").and_then(Json::as_f64),
        Some(congest_telemetry::SCHEMA_VERSION as f64)
    );
    assert_eq!(m.get("kind").and_then(Json::as_str), Some("solver-run"));
    let phases = m.get("phases").and_then(Json::as_arr).expect("phases array");
    assert_eq!(phases.len(), phase_names.len());
    for p in phases {
        for key in ["name", "rounds", "messages", "payload_words", "wall_ns"] {
            assert!(p.get(key).is_some(), "phase row missing {key}");
        }
    }
    let totals = m.get("totals").expect("totals");
    assert_eq!(totals.get("rounds").and_then(Json::as_f64), Some(total_rounds as f64));
    assert!(total_wall_ns > 0, "phases must carry wall-clock");
    println!(
        "manifest OK: {} phase rows, totals.rounds = {total_rounds}, wall = {:.3} ms",
        phases.len(),
        total_wall_ns as f64 / 1e6
    );

    // -------- registry, Prometheus-style --------
    let prom = export::prometheus(tele.registry());
    let lines: Vec<&str> =
        prom.lines().filter(|l| l.starts_with("oracle_op") && l.contains("quantile")).collect();
    assert!(!lines.is_empty(), "op latency histograms must be populated");
    println!("\nop latency quantiles (ns):");
    for l in &lines {
        println!("  {l}");
    }
}
