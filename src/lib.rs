//! # congest-apsp-repro
//!
//! Umbrella crate for the reproduction of *Faster Deterministic All Pairs
//! Shortest Paths in Congest Model* (Agarwal & Ramachandran, SPAA 2020):
//! re-exports the graph substrate, the CONGEST simulator, the
//! derandomization toolkit, the APSP algorithms and the distance-oracle
//! serving layer, and hosts the workspace-level examples and integration
//! tests.
//!
//! The one-line vertical slice — compute with the paper's deterministic
//! pipeline, then serve — is `congest_apsp::Solver::builder(&g).run()?`
//! followed by `.into_oracle(&g)` (from `congest_oracle::IntoOracle`); the
//! flat `congest_graph::DistMatrix` arena flows from the solver into the
//! oracle without a copy.
//!
//! See `README.md` for the tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the measured reproduction of the paper's
//! round-complexity claims.

#![warn(missing_docs)]
#![deny(deprecated)]

pub use congest_apsp as apsp;
pub use congest_derand as derand;
pub use congest_graph as graph;
pub use congest_oracle as oracle;
pub use congest_serve as serve;
pub use congest_sim as sim;
