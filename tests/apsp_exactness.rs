//! End-to-end exactness: every distributed APSP algorithm must reproduce
//! the sequential Dijkstra matrix on every workload family, directed and
//! undirected, with integer, zero-inflated and real weights (Theorem 1.1).

use congest_apsp::{Algorithm, ApspConfig, BlockerMethod, Solver};
use congest_graph::generators::{Family, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{Graph, F64};

fn check_all_algorithms(g: &Graph<u64>, label: &str) {
    let oracle = apsp_dijkstra(g);
    let paper = Solver::builder(g).run().unwrap();
    assert_eq!(paper.dist, oracle, "{label}: paper algorithm");
    let rand = Solver::builder(g).blocker_method(BlockerMethod::Randomized).run().unwrap();
    assert_eq!(rand.dist, oracle, "{label}: randomized blocker variant");
    let ar18 = Solver::builder(g).algorithm(Algorithm::Ar18).run().unwrap();
    assert_eq!(ar18.dist, oracle, "{label}: AR18 baseline");
    let naive = Solver::builder(g).algorithm(Algorithm::Naive).run().unwrap();
    assert_eq!(naive.dist, oracle, "{label}: naive baseline");
}

#[test]
fn exact_on_all_families_directed() {
    for fam in Family::ALL {
        let g = fam.build(14, true, WeightDist::Uniform(0, 9), 31);
        check_all_algorithms(&g, fam.name());
    }
}

#[test]
fn exact_on_all_families_undirected() {
    for fam in Family::ALL {
        let g = fam.build(14, false, WeightDist::Uniform(1, 20), 32);
        check_all_algorithms(&g, fam.name());
    }
}

#[test]
fn exact_with_zero_weights() {
    for fam in [Family::SparseRandom, Family::Broom, Family::Grid] {
        let g = fam.build(14, true, WeightDist::ZeroInflated { p_zero: 0.4, hi: 7 }, 33);
        check_all_algorithms(&g, fam.name());
    }
}

#[test]
fn exact_with_unit_weights() {
    let g = Family::Cycle.build(15, true, WeightDist::Unit, 34);
    check_all_algorithms(&g, "cycle-unit");
}

#[test]
fn exact_with_real_weights() {
    // f64 weights exercise the "arbitrary non-negative weights" claim.
    let gu = Family::SparseRandom.build(13, true, WeightDist::Uniform(0, 1000), 35);
    let g = gu.map_weights(|w| F64::new(w as f64 / 8.0));
    let oracle = apsp_dijkstra(&g);
    let paper = Solver::builder(&g).run().unwrap();
    assert_eq!(paper.dist, oracle);
}

#[test]
fn exact_with_h_override_sweep() {
    // Correctness must not depend on the magic h = n^{1/3} choice.
    let g = Family::Broom.build(16, true, WeightDist::Uniform(1, 9), 36);
    let oracle = apsp_dijkstra(&g);
    for h in [1usize, 2, 4, 6] {
        let out = Solver::builder(&g).hop_param(h).run().unwrap();
        assert_eq!(out.dist, oracle, "h = {h}");
    }
}

#[test]
fn exact_under_worst_case_charging() {
    use congest_apsp::Charging;
    let g = Family::SparseRandom.build(12, true, WeightDist::Uniform(0, 9), 37);
    let out = Solver::builder(&g).charging(Charging::WorstCase).run().unwrap();
    assert_eq!(out.dist, apsp_dijkstra(&g));
}

#[test]
fn config_round_trips_through_builder() {
    // `.config(cfg)` must behave exactly like the per-knob setters.
    let g = Family::SparseRandom.build(12, true, WeightDist::Uniform(0, 9), 38);
    let cfg = ApspConfig { h: Some(2), ..Default::default() };
    let via_config = Solver::builder(&g).config(cfg).run().unwrap();
    let via_knob = Solver::builder(&g).hop_param(2).run().unwrap();
    assert_eq!(via_config.dist, via_knob.dist);
    assert_eq!(via_config.meta.h, 2);
}

#[test]
fn unreachable_pairs_are_inf() {
    use congest_graph::{Edge, Weight};
    // Directed path: communication is bidirectional but edges are one-way,
    // so reverse distances must be INF.
    let g: Graph<u64> = Graph::from_edges(
        4,
        true,
        vec![Edge::new(0, 1, 1), Edge::new(1, 2, 1), Edge::new(2, 3, 1)],
    );
    let out = Solver::builder(&g).run().unwrap();
    assert_eq!(out.dist[0][3], 3);
    assert_eq!(out.dist[3][0], u64::INF);
}
