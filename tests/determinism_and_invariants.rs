//! Cross-crate invariants: determinism of the deterministic algorithms,
//! blocker validity through the public API, congestion bounds, and
//! randomized-variant stability across seeds.

use congest_apsp::{BlockerMethod, Charging, Solver, Step6Method};
use congest_graph::generators::{Family, WeightDist};
use congest_graph::seq::apsp_dijkstra;

#[test]
fn deterministic_runs_are_bit_identical() {
    let g = Family::SparseRandom.build(16, true, WeightDist::Uniform(0, 9), 77);
    let solver = Solver::builder(&g).build();
    let a = solver.run().unwrap();
    let b = solver.run().unwrap();
    assert_eq!(a.dist, b.dist);
    assert_eq!(a.meta.q, b.meta.q);
    assert_eq!(a.recorder.total_rounds(), b.recorder.total_rounds());
    assert_eq!(a.recorder.total_messages(), b.recorder.total_messages());
    // phase-by-phase identity
    let pa: Vec<_> = a.recorder.phases().iter().map(|p| (p.name.clone(), p.rounds)).collect();
    let pb: Vec<_> = b.recorder.phases().iter().map(|p| (p.name.clone(), p.rounds)).collect();
    assert_eq!(pa, pb);
}

#[test]
fn tracked_successor_planes_are_byte_identical_across_runs() {
    let g = Family::SparseRandom.build(16, true, WeightDist::Uniform(0, 9), 42);
    let solver = Solver::builder(&g).build();
    let a = solver.run().unwrap();
    let b = solver.run().unwrap();
    let pa = a.dist.successors().expect("tracking is on by default");
    let pb = b.dist.successors().expect("tracking is on by default");
    assert_eq!(pa, pb, "two runs must produce byte-identical successor planes");
    assert_eq!(a.dist.as_slice(), b.dist.as_slice());
    // Payload accounting is deterministic too.
    assert_eq!(a.recorder.total_payload_words(), b.recorder.total_payload_words());
    assert_eq!(a.recorder.max_msg_words(), b.recorder.max_msg_words());
}

#[test]
fn randomized_variant_same_answer_any_seed() {
    let g = Family::Broom.build(14, true, WeightDist::Uniform(1, 9), 5);
    let oracle = apsp_dijkstra(&g);
    let mut rounds = Vec::new();
    for seed in [1u64, 99, 12345] {
        let out =
            Solver::builder(&g).blocker_method(BlockerMethod::Randomized).seed(seed).run().unwrap();
        assert_eq!(out.dist, oracle, "seed {seed}");
        rounds.push(out.recorder.total_rounds());
    }
    // rounds may differ across seeds, but only within sane bounds
    let (lo, hi) = (rounds.iter().min().unwrap(), rounds.iter().max().unwrap());
    assert!(hi / lo.max(&1) < 10, "seed variance too large: {rounds:?}");
}

#[test]
fn blocker_set_reported_in_meta_is_valid() {
    // Rebuild the CSSSP through the public API and check Q against it.
    use congest_apsp::blocker::is_valid_blocker;
    use congest_apsp::csssp::build_csssp;
    use congest_graph::seq::Direction;
    use congest_graph::NodeId;
    use congest_sim::{Recorder, SimConfig, Topology};

    let g = Family::Broom.build(18, true, WeightDist::Uniform(1, 5), 9);
    let out = Solver::builder(&g).run().unwrap();
    let topo = Topology::from_graph(&g);
    let mut rec = Recorder::new();
    let sources: Vec<NodeId> = (0..g.n() as NodeId).collect();
    let coll = build_csssp(
        &g,
        &topo,
        &sources,
        out.meta.h,
        Direction::Out,
        false,
        SimConfig::default(),
        Charging::Quiesce,
        &mut rec,
        &mut congest_apsp::Recovery::disabled(),
        "csssp",
    )
    .unwrap();
    assert!(is_valid_blocker(&coll, &out.meta.q));
}

#[test]
fn step6_congestion_bound_holds() {
    let g = Family::SparseRandom.build(20, true, WeightDist::Uniform(0, 9), 21);
    let out = Solver::builder(&g).run().unwrap();
    if let Some(s6) = &out.meta.step6 {
        let q = out.meta.q.len();
        if q > 0 {
            let threshold = (g.n() as f64 * (q as f64).sqrt()).ceil() as u64;
            assert!(
                s6.congestion_after <= threshold,
                "Lemma A.15 violated: {} > {threshold}",
                s6.congestion_after
            );
        }
    }
}

#[test]
fn quiesce_never_slower_than_worst_case() {
    let g = Family::SparseRandom.build(12, true, WeightDist::Uniform(1, 9), 3);
    let quiesce = Solver::builder(&g).run().unwrap();
    let worst = Solver::builder(&g).charging(Charging::WorstCase).run().unwrap();
    assert_eq!(quiesce.dist, worst.dist);
    assert!(quiesce.recorder.total_rounds() <= worst.recorder.total_rounds());
}

#[test]
fn trivial_step6_matches_pipelined() {
    let g = Family::Grid.build(16, false, WeightDist::Uniform(1, 9), 8);
    let a = Solver::builder(&g).run().unwrap();
    let b = Solver::builder(&g).step6_method(Step6Method::TrivialBroadcast).run().unwrap();
    assert_eq!(a.dist, b.dist);
}
