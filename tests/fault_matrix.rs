//! Differential fault-matrix contract tests.
//!
//! The recovery contract: under ANY seeded fault plan, `Solver::run`
//! either returns distances (and successor plane, and recorded rounds)
//! bit-identical to the fault-free run, or the typed
//! `SolverError::Unrecoverable` — never silently wrong answers, never a
//! hang, never a raw engine error once a plan is armed. With no plan (or
//! an all-zero plan) the fast path must be byte-identical to today,
//! including an all-zero `FaultReport`.
//!
//! One test per fault kind (drop / corrupt / crash / flap) so CI can run
//! them as a matrix: `cargo test --test fault_matrix fault_matrix_drop`.

use congest_apsp::{Algorithm, FaultReport, Solver, SolverError};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::NodeId;
use congest_sim::fault::FaultSpec;

const SEEDS: [u64; 4] = [3, 17, 71, 104_729];

/// Runs the solver clean and under `spec` on the same graph, asserting
/// the recover-or-refuse contract. Returns `true` when the faulted run
/// observably hit the fault plane (recovered injections or a typed
/// refusal), so callers can assert the matrix was not vacuous.
fn recovered_or_refused(algorithm: Algorithm, seed: u64, spec: FaultSpec) -> bool {
    let g = gnm_connected(18, 40, true, WeightDist::Uniform(0, 9), seed);
    let clean = Solver::builder(&g).algorithm(algorithm).run().unwrap();
    let faulted =
        Solver::builder(&g).algorithm(algorithm).fault_plan(spec).max_phase_retries(8).run();
    match faulted {
        Ok(out) => {
            // Recovered: every accepted phase ran fault-free, so the
            // result — distances, successor plane, even the per-phase
            // round accounting — must be bit-identical to the clean run.
            assert_eq!(out.dist, clean.dist, "seed {seed}: recovered distances differ");
            for u in 0..18u32 {
                for v in 0..18u32 {
                    assert_eq!(
                        out.dist.successor(u, v),
                        clean.dist.successor(u, v),
                        "seed {seed}: successor plane diverged at ({u}, {v})"
                    );
                }
            }
            assert_eq!(
                out.recorder.total_rounds(),
                clean.recorder.total_rounds(),
                "seed {seed}: accepted attempts must cost the clean round count"
            );
            let rep = out.fault_report;
            if rep.is_clean() {
                assert_eq!(rep, FaultReport::default());
                false
            } else {
                // Either the merged counters saw injections, or an
                // attempt died mid-run (its counters are lost with the
                // aborted engine) and was retried.
                assert!(
                    rep.faults.injected > 0 || rep.retries > 0,
                    "seed {seed}: unclean report with no witness: {rep:?}"
                );
                assert!(rep.retries >= rep.phases_retried, "seed {seed}: {rep:?}");
                true
            }
        }
        // Typed refusal is the other permitted outcome.
        Err(SolverError::Unrecoverable { phase, attempts, .. }) => {
            assert!(!phase.is_empty());
            assert!(attempts > 0);
            true
        }
        Err(SolverError::Sim(e)) => {
            panic!("seed {seed}: armed plan must never leak a raw engine error: {e}")
        }
    }
}

/// Asserts the contract across all seeds and that at least one seed
/// actually exercised the fault plane (otherwise the rates are too low
/// and the matrix proves nothing).
fn run_matrix(kind: &str, spec_for: impl Fn(u64) -> FaultSpec) {
    let mut exercised = false;
    for seed in SEEDS {
        exercised |= recovered_or_refused(Algorithm::Ar20, seed, spec_for(seed));
    }
    assert!(exercised, "{kind}: no seed injected a single fault — raise the rates");
}

#[test]
fn fault_matrix_drop() {
    run_matrix("drop", |seed| FaultSpec::seeded(seed ^ 0xD0).drops(150));
}

#[test]
fn fault_matrix_corrupt() {
    run_matrix("corrupt", |seed| FaultSpec::seeded(seed ^ 0xC0).corruption(150));
}

#[test]
fn fault_matrix_crash() {
    run_matrix("crash", |seed| FaultSpec::seeded(seed ^ 0xCA).crashes(4_000, 64));
}

#[test]
fn fault_matrix_flap() {
    run_matrix("flap", |seed| FaultSpec::seeded(seed ^ 0xF1).flaps(4_000, 64));
}

/// A mixed plan across the other two algorithm engines: the contract is
/// solver-wide, not AR20-specific.
#[test]
fn fault_matrix_all_algorithms() {
    for algorithm in [Algorithm::Naive, Algorithm::Ar18] {
        let spec = FaultSpec::seeded(99).drops(80).corruption(80);
        let _ = recovered_or_refused(algorithm, 5, spec);
    }
}

/// An armed-but-all-zero plan must take the clean fast path: outcome
/// byte-identical to a plan-less run, report all zeros.
#[test]
fn fault_matrix_zero_rates_are_byte_identical() {
    let g = gnm_connected(16, 32, true, WeightDist::Uniform(0, 9), 12);
    let clean = Solver::builder(&g).run().unwrap();
    let armed = Solver::builder(&g).fault_plan(FaultSpec::seeded(7)).run().unwrap();
    assert_eq!(armed.dist, clean.dist);
    assert_eq!(armed.recorder.total_rounds(), clean.recorder.total_rounds());
    assert_eq!(armed.fault_report, FaultReport::default());
    assert_eq!(clean.fault_report, FaultReport::default());
}

/// Recovery must be deterministic: the same graph + plan + knobs give the
/// same outcome AND the same fault accounting, run after run.
#[test]
fn fault_matrix_runs_are_reproducible() {
    let g = gnm_connected(18, 40, true, WeightDist::Uniform(0, 9), 31);
    let spec = FaultSpec::seeded(41).drops(200).corruption(100);
    let run = || Solver::builder(&g).fault_plan(spec).max_phase_retries(8).run();
    match (run(), run()) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.dist, b.dist);
            assert_eq!(a.fault_report, b.fault_report);
            assert_eq!(a.recorder.total_rounds(), b.recorder.total_rounds());
        }
        (
            Err(SolverError::Unrecoverable { phase: a, .. }),
            Err(SolverError::Unrecoverable { phase: b, .. }),
        ) => {
            assert_eq!(a, b);
        }
        (a, b) => panic!("non-deterministic recovery: {a:?} vs {b:?}"),
    }
}

/// With retries forbidden, any injected fault must surface as the typed
/// refusal — and the error names the phase that failed.
#[test]
fn fault_matrix_zero_retries_refuses() {
    let g = gnm_connected(18, 40, true, WeightDist::Uniform(0, 9), 3);
    // Aggressive drops: some phase will certainly see an injection.
    let res = Solver::builder(&g)
        .fault_plan(FaultSpec::seeded(13).drops(50_000))
        .max_phase_retries(0)
        .run();
    match res {
        Err(SolverError::Unrecoverable { phase, attempts, .. }) => {
            assert!(!phase.is_empty());
            assert_eq!(attempts, 1);
        }
        other => panic!("expected Unrecoverable at retries = 0, got {other:?}"),
    }
}

/// Hop budget sanity for the walk helper used in assertions above.
#[test]
fn fault_matrix_recovered_paths_are_walkable() {
    let g = gnm_connected(18, 40, true, WeightDist::Uniform(1, 9), 17);
    let spec = FaultSpec::seeded(23).drops(150);
    if let Ok(out) = Solver::builder(&g).fault_plan(spec).max_phase_retries(8).run() {
        // Walk each successor chain; it must terminate within n hops.
        for u in 0..18 as NodeId {
            for v in 0..18 as NodeId {
                let mut cur = u;
                let mut hops = 0;
                while cur != v {
                    match out.dist.successor(cur, v) {
                        Some(nxt) => cur = nxt,
                        None => break,
                    }
                    hops += 1;
                    assert!(hops <= 18, "successor cycle at ({u}, {v})");
                }
            }
        }
    }
}
