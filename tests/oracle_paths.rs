//! Property tests for oracle path reconstruction: every `Oracle::path(u,v)`
//! must be a valid edge walk in the graph whose weight sum equals the
//! `apsp_dijkstra` distance, on random `gnm_connected` graphs, directed and
//! undirected — and `path` must return `None` exactly for unreachable pairs.

use congest_apsp::Solver;
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{DistMatrix, Graph, NodeId, Weight};
use congest_oracle::{IntoOracle, Oracle};
use proptest::prelude::*;

/// Minimum weight of an edge `u -> v`, across parallel edges. `None` when
/// no such edge exists.
fn edge_weight<W: Weight>(g: &Graph<W>, u: NodeId, v: NodeId) -> Option<W> {
    g.out_edges(u).filter(|&(t, _)| t == v).map(|(_, w)| w).min()
}

/// Asserts the full path contract of `oracle` against the Dijkstra matrix.
fn check_paths<W: Weight>(g: &Graph<W>, oracle: &Oracle<W>, dist: &DistMatrix<W>) {
    let n = g.n();
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            let expected = dist[u as usize][v as usize];
            assert_eq!(oracle.distance(u, v), expected, "distance ({u}, {v})");
            match oracle.path(u, v) {
                None => assert!(expected.is_inf(), "({u}, {v}) reachable but no path"),
                Some(p) => {
                    assert!(!expected.is_inf(), "({u}, {v}) unreachable but got a path");
                    assert_eq!(p[0], u, "path must start at the source");
                    assert_eq!(*p.last().unwrap(), v, "path must end at the target");
                    assert!(p.len() <= n, "simple shortest path has at most n vertices");
                    let mut total = W::ZERO;
                    for hop in p.windows(2) {
                        let w = edge_weight(g, hop[0], hop[1])
                            .unwrap_or_else(|| panic!("({}, {}) is not an edge", hop[0], hop[1]));
                        total = total.plus(w);
                    }
                    assert_eq!(total, expected, "path weight ({u}, {v})");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Paths from a Dijkstra-built oracle are valid minimum-weight walks,
    /// on directed and undirected random graphs with zero weights allowed.
    #[test]
    fn paths_are_valid_shortest_walks(
        n in 2usize..28,
        extra in 0usize..50,
        seed in 0u64..10_000,
        directed: bool,
        zero_weights: bool,
    ) {
        let dist_kind = if zero_weights {
            WeightDist::ZeroInflated { p_zero: 0.3, hi: 9 }
        } else {
            WeightDist::Uniform(1, 50)
        };
        let g = gnm_connected(n, extra, directed, dist_kind, seed);
        let dist = apsp_dijkstra(&g);
        let oracle = Oracle::from_dist(&g, dist.clone());
        check_paths(&g, &oracle, &dist);
    }

    /// k-nearest agrees with a full sort of the Dijkstra distance row.
    #[test]
    fn k_nearest_matches_sorted_row(
        n in 2usize..24,
        extra in 0usize..40,
        seed in 0u64..10_000,
        k in 0usize..12,
    ) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 20), seed);
        let dist = apsp_dijkstra(&g);
        let oracle = Oracle::from_dist(&g, dist.clone());
        for u in 0..n as NodeId {
            let mut expect: Vec<(u64, NodeId)> = (0..n as NodeId)
                .filter(|&v| v != u && !dist[u as usize][v as usize].is_inf())
                .map(|v| (dist[u as usize][v as usize], v))
                .collect();
            expect.sort_unstable();
            expect.truncate(k);
            let got: Vec<(u64, NodeId)> =
                oracle.k_nearest(u, k).into_iter().map(|(v, d)| (d, v)).collect();
            prop_assert_eq!(&got, &expect);
        }
    }
}

/// The vertical slice the serving layer exists for: an oracle built from a
/// *distributed* APSP outcome reconstructs exact shortest paths.
#[test]
fn paths_from_distributed_outcome_are_exact() {
    for (seed, directed) in [(3u64, true), (8, false)] {
        let g = gnm_connected(18, 40, directed, WeightDist::Uniform(0, 9), seed);
        let oracle = Solver::builder(&g).run().unwrap().into_oracle(&g);
        let dist = apsp_dijkstra(&g);
        check_paths(&g, &oracle, &dist);
    }
}

/// Real-valued weights go through the same contract.
#[test]
fn f64_weights_reconstruct_exactly() {
    let g = gnm_connected(16, 32, true, WeightDist::Uniform(1, 8), 5);
    // Halving keeps sums exactly representable, so equality is exact.
    let gf = g.map_weights(|w| congest_graph::F64::new(w as f64 * 0.5));
    let dist = apsp_dijkstra(&gf);
    let oracle = Oracle::from_dist(&gf, dist.clone());
    check_paths(&gf, &oracle, &dist);
}
