//! Snapshot-format integration tests: byte-exact round trips through memory
//! and disk, and graceful `Err` (never a panic) on malformed input —
//! truncations at every single prefix length, version and weight-type
//! mismatches, bit flips, and trailing garbage.

use congest_graph::generators::{gnm_connected, Family, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::F64;
use congest_oracle::{Oracle, SnapshotError, MAGIC, VERSION_V2};

fn sample(n: usize, seed: u64) -> Oracle<u64> {
    let g = gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 30), seed);
    Oracle::from_dist(&g, apsp_dijkstra(&g))
}

#[test]
fn round_trip_is_bit_identical_across_families() {
    for fam in [Family::Path, Family::Star, Family::Layered] {
        let g = fam.build(17, true, WeightDist::Uniform(1, 9), 4);
        let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
        let bytes = oracle.to_bytes();
        let restored = Oracle::<u64>::from_bytes(&bytes).unwrap();
        assert_eq!(oracle, restored, "family {}", fam.name());
        assert_eq!(bytes, restored.to_bytes(), "re-serialization must be byte-identical");
    }
}

#[test]
fn disk_round_trip_and_queries_survive() {
    let oracle = sample(20, 11);
    let path = std::env::temp_dir().join("oracle_snapshot_it.bin");
    oracle.save(&path).unwrap();
    let restored = Oracle::<u64>::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(oracle, restored);
    for u in 0..20u32 {
        for v in 0..20u32 {
            assert_eq!(oracle.path(u, v), restored.path(u, v));
        }
    }
}

#[test]
fn every_truncation_is_a_graceful_err() {
    let bytes = sample(8, 2).to_bytes();
    for cut in 0..bytes.len() {
        match Oracle::<u64>::from_bytes(&bytes[..cut]) {
            Err(SnapshotError::Truncated { expected, got }) => {
                assert_eq!(got, cut);
                assert!(expected > cut);
            }
            Err(other) => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            Ok(_) => panic!("cut at {cut}: truncated snapshot must not load"),
        }
    }
}

#[test]
fn version_mismatch_is_a_graceful_err() {
    // Version 2 is a real format now, so "unknown" starts past it.
    let mut bytes = sample(6, 3).to_bytes();
    let future = (VERSION_V2 + 97).to_le_bytes();
    bytes[8] = future[0];
    bytes[9] = future[1];
    match Oracle::<u64>::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => assert_eq!(found, VERSION_V2 + 97),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // A v1 payload relabeled v2 must come back as a typed error from the
    // v2 parser (its 32-byte header checksum cannot match), not a panic.
    let mut bytes = sample(6, 3).to_bytes();
    bytes[8] = 2;
    bytes[9] = 0;
    assert!(Oracle::<u64>::from_bytes(&bytes).is_err());
}

#[test]
fn weight_type_confusion_is_rejected() {
    let bytes = sample(6, 4).to_bytes();
    assert!(matches!(
        Oracle::<F64>::from_bytes(&bytes),
        Err(SnapshotError::WeightTypeMismatch { .. })
    ));
}

#[test]
fn every_single_bit_flip_in_a_small_snapshot_is_detected() {
    let good = sample(4, 5).to_bytes();
    for byte in 0..good.len() {
        let mut bad = good.clone();
        bad[byte] ^= 1;
        assert!(Oracle::<u64>::from_bytes(&bad).is_err(), "flipping byte {byte} went undetected");
    }
}

#[test]
fn magic_and_trailing_garbage_rejected() {
    let mut bytes = sample(5, 6).to_bytes();
    bytes[0] = b'X';
    assert!(matches!(Oracle::<u64>::from_bytes(&bytes), Err(SnapshotError::BadMagic)));

    let mut bytes = sample(5, 6).to_bytes();
    bytes.extend_from_slice(b"junk");
    assert!(matches!(Oracle::<u64>::from_bytes(&bytes), Err(SnapshotError::TrailingData { .. })));

    assert_eq!(MAGIC.len(), 8);
}

#[test]
fn errors_render_useful_messages() {
    let err = Oracle::<u64>::from_bytes(&[]).unwrap_err();
    assert!(err.to_string().contains("truncated"));
    let mut bytes = sample(4, 7).to_bytes();
    bytes[8] = 0xFF;
    let err = Oracle::<u64>::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("version"));
}

// ---------------------------------------------------------------------------
// Fuzz: arbitrary byte-range mutations. The loader's contract is that NO
// input makes `from_bytes` panic, and no accepted input serves different
// answers than the snapshot that was saved — a mutation either trips a
// typed `SnapshotError` (usually the checksum) or was semantically a no-op.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fuzzed_byte_ranges_never_panic_or_corrupt(
        seed in 0u64..6,
        start in 0usize..100_000,
        len in 1usize..64,
        xor in proptest::collection::vec(0u8..=255u8, 64),
        resize in 0usize..3,
        delta in 1usize..32,
    ) {
        let oracle = sample(10, seed);
        let clean = oracle.to_bytes();
        let mut bytes = clean.clone();
        let start = start % bytes.len();
        for (i, &mask) in xor.iter().enumerate().take(len) {
            let Some(b) = bytes.get_mut(start + i) else { break };
            *b ^= mask;
        }
        match resize {
            1 => bytes.truncate(bytes.len().saturating_sub(delta)),
            2 => bytes.extend(xor.iter().cycle().take(delta)),
            _ => {}
        }
        match Oracle::<u64>::from_bytes(&bytes) {
            // Any typed error is a pass — a panic would fail the test.
            // (The untouched snapshot must still load.)
            Err(_) => prop_assert_ne!(bytes, clean),
            Ok(restored) => {
                // Only a semantically no-op mutation may be accepted, and
                // it must serve bit-identical distances and valid walks.
                for u in 0..10u32 {
                    for v in 0..10u32 {
                        prop_assert_eq!(restored.distance(u, v), oracle.distance(u, v));
                        prop_assert!(restored.try_path(u, v).is_ok());
                    }
                }
            }
        }
    }
}
