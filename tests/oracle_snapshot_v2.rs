//! v2 blocked-snapshot integration tests: bit-identical answers across
//! the v1 eager, v2 eager, and v2 paged backends; per-block corruption
//! that is typed and names the damaged block; graceful truncation at
//! every length; hostile-index rejection; and eviction-under-load
//! correctness with a resident budget a fraction of the file size.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{Edge, Graph, NodeId};
use congest_oracle::{Oracle, PagedConfig, PagedOracle, QueryError, SnapshotError, V2Config};

fn sample(n: usize, seed: u64) -> (Graph<u64>, Oracle<u64>) {
    let g = gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 30), seed);
    let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
    (g, oracle)
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("v2_it_{}_{name}", std::process::id()))
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3))
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Minimal independent reading of the v2 tail: (index_offset, entries),
/// each entry `(offset, len, fnv)`.
fn read_index(bytes: &[u8]) -> (usize, Vec<(u64, u64, u64)>) {
    let foot = bytes.len() - 32;
    let ioff = u64_at(bytes, foot) as usize;
    let ilen = u64_at(bytes, foot + 8) as usize;
    let entries = bytes[ioff..ioff + ilen]
        .chunks_exact(24)
        .map(|e| (u64_at(e, 0), u64_at(e, 8), u64_at(e, 16)))
        .collect();
    (ioff, entries)
}

/// Rewrites entry `i` of the index and re-seals the index + footer
/// checksums, so only the *semantic* damage is visible to the loader.
fn patch_entry(bytes: &mut [u8], i: usize, entry: (u64, u64, u64)) {
    let foot = bytes.len() - 32;
    let ioff = u64_at(bytes, foot) as usize;
    let ilen = u64_at(bytes, foot + 8) as usize;
    let at = ioff + i * 24;
    bytes[at..at + 8].copy_from_slice(&entry.0.to_le_bytes());
    bytes[at + 8..at + 16].copy_from_slice(&entry.1.to_le_bytes());
    bytes[at + 16..at + 24].copy_from_slice(&entry.2.to_le_bytes());
    let ifnv = fnv1a(&bytes[ioff..ioff + ilen]);
    bytes[foot + 16..foot + 24].copy_from_slice(&ifnv.to_le_bytes());
    let ffnv = fnv1a(&bytes[foot..foot + 24]);
    bytes[foot + 24..foot + 32].copy_from_slice(&ffnv.to_le_bytes());
}

fn write_v2(oracle: &Oracle<u64>, cfg: &V2Config<u64>, name: &str) -> std::path::PathBuf {
    let path = temp(name);
    oracle.save_v2(&path, cfg).unwrap();
    path
}

/// Compares a paged handle against the eager oracle over every pair and
/// op. Walks must be *identical* (both derive successors with the same
/// deterministic reverse BFS), not merely both-shortest.
fn assert_backends_agree(eager: &Oracle<u64>, paged: &PagedOracle<u64>) {
    let n = eager.n();
    assert_eq!(paged.n(), n);
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            assert_eq!(paged.distance(u, v).unwrap(), eager.distance(u, v), "dist ({u},{v})");
            assert_eq!(paged.try_path(u, v).unwrap(), eager.try_path(u, v).unwrap(), "({u},{v})");
        }
        assert_eq!(paged.k_nearest(u, 5).unwrap(), eager.k_nearest(u, 5), "k_nearest({u})");
    }
}

#[test]
fn v1_and_v2_agree_bit_for_bit_across_block_sizes() {
    let (g, oracle) = sample(23, 9);
    // v1 round trip is the baseline.
    let v1 = Oracle::<u64>::from_bytes(&oracle.to_bytes()).unwrap();
    assert_eq!(v1, oracle);
    for block_rows in [1u32, 3, 8, 23, 64] {
        // With the successor plane on disk.
        let cfg = V2Config { block_rows, ..V2Config::default() };
        let path = write_v2(&oracle, &cfg, &format!("roundtrip_{block_rows}"));
        let v2 = Oracle::<u64>::load(&path).unwrap();
        assert_eq!(v2, oracle, "eager v2 load, block_rows={block_rows}");
        let paged = PagedOracle::<u64>::open(&path, PagedConfig::default()).unwrap();
        assert_backends_agree(&oracle, &paged);
        std::fs::remove_file(&path).ok();

        // Plane dropped on disk, graph embedded: successors re-derived.
        let cfg = V2Config { block_rows, drop_successors: true, graph: Some(&g) };
        let path = write_v2(&oracle, &cfg, &format!("roundtrip_ns_{block_rows}"));
        let v2 = Oracle::<u64>::load(&path).unwrap();
        assert_eq!(v2, oracle, "derived v2 load, block_rows={block_rows}");
        let paged = PagedOracle::<u64>::open(&path, PagedConfig::default()).unwrap();
        assert!(!paged.has_successor_plane());
        assert_backends_agree(&oracle, &paged);
        assert!(paged.stats().derivations > 0, "plane-less paged serving must derive");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn eviction_under_budget_keeps_answers_exact() {
    let (_, oracle) = sample(64, 4);
    let cfg = V2Config { block_rows: 3, ..V2Config::default() };
    let path = write_v2(&oracle, &cfg, "evict");
    let file_len = std::fs::metadata(&path).unwrap().len() as usize;
    // Budget ≈ a quarter of the file: far too small to hold both planes,
    // so steady-state serving must continuously evict and re-validate.
    let paged =
        PagedOracle::<u64>::open(&path, PagedConfig { resident_bytes: file_len / 4 }).unwrap();
    assert_backends_agree(&oracle, &paged);
    let stats = paged.stats();
    assert!(stats.evictions > 0, "a quarter-file budget must evict: {stats:?}");
    assert!(stats.misses > stats.evictions, "every eviction was once a miss");
    assert!(
        paged.resident_bytes() <= file_len / 4,
        "resident {} exceeds budget {}",
        paged.resident_bytes(),
        file_len / 4
    );
    // Re-walk everything after heavy eviction churn: still exact.
    assert_backends_agree(&oracle, &paged);
    std::fs::remove_file(&path).ok();
}

#[test]
fn concurrent_paged_readers_under_tiny_budget_agree_with_eager() {
    let (_, oracle) = sample(48, 12);
    let cfg = V2Config { block_rows: 4, ..V2Config::default() };
    let path = write_v2(&oracle, &cfg, "concurrent");
    let file_len = std::fs::metadata(&path).unwrap().len() as usize;
    let paged =
        PagedOracle::<u64>::open(&path, PagedConfig { resident_bytes: file_len / 6 }).unwrap();
    std::thread::scope(|scope| {
        for t in 0..4u32 {
            let paged = &paged;
            let oracle = &oracle;
            scope.spawn(move || {
                let mut state = u64::from(t) + 1;
                for _ in 0..1500 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let u = (state % 48) as NodeId;
                    let v = ((state >> 32) % 48) as NodeId;
                    assert_eq!(paged.distance(u, v).unwrap(), oracle.distance(u, v));
                    assert_eq!(paged.try_path(u, v).unwrap(), oracle.try_path(u, v).unwrap());
                }
            });
        }
    });
    assert!(paged.stats().evictions > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn per_block_bit_flip_is_typed_and_names_the_block() {
    let (_, oracle) = sample(20, 7);
    let cfg = V2Config { block_rows: 4, ..V2Config::default() }; // 5 dist + 5 succ blocks
    let path = write_v2(&oracle, &cfg, "bitflip");
    let clean = std::fs::read(&path).unwrap();
    let (_, entries) = read_index(&clean);
    assert_eq!(entries.len(), 10);
    for (b, &(off, len, _)) in entries.iter().enumerate() {
        let mut bad = clean.clone();
        bad[off as usize + len as usize / 2] ^= 0x10;
        // Eager load: typed SnapshotError naming block b.
        match Oracle::<u64>::from_bytes(&bad) {
            Err(SnapshotError::BlockCorrupt { block, what }) => {
                assert_eq!(block as usize, b, "eager load names the damaged block");
                assert_eq!(what, "checksum mismatch");
            }
            other => panic!("block {b}: expected BlockCorrupt, got {other:?}"),
        }
        // Paged open succeeds (the index is intact); only queries that
        // touch block b fail, and the error names it. Blocks live in
        // row-partition order, so block b covers rows [4b, 4b+4).
        std::fs::write(&path, &bad).unwrap();
        let paged = PagedOracle::<u64>::open(&path, PagedConfig::default()).unwrap();
        let row_in_block = (b % 5 * 4) as NodeId;
        let (hit, miss) = if b < 5 {
            // dist block: row queries touch it, other rows don't.
            (
                paged.distance(row_in_block, 0).map(|_| ()),
                paged.distance((row_in_block + 4) % 20, 0).map(|_| ()),
            )
        } else {
            // succ block: paths *toward* its targets touch it.
            let v = row_in_block;
            let other = (v + 4) % 20;
            (
                paged.try_path((v + 1) % 20, v).map(|_| ()),
                paged.try_path((other + 1) % 20, other).map(|_| ()),
            )
        };
        assert_eq!(
            hit.unwrap_err(),
            QueryError::BlockUnavailable { block: b as u32 },
            "query touching block {b}"
        );
        assert!(miss.is_ok(), "block {b}: undamaged blocks must keep serving");
    }
    std::fs::write(&path, &clean).unwrap();
    std::fs::remove_file(&path).ok();
}

#[test]
fn v2_truncation_is_graceful_at_every_length() {
    let (_, oracle) = sample(6, 2);
    let bytes = oracle.to_bytes_v2(&V2Config { block_rows: 2, ..V2Config::default() }).unwrap();
    for cut in 0..bytes.len() {
        assert!(Oracle::<u64>::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} must not load");
    }
    assert_eq!(Oracle::<u64>::from_bytes(&bytes).unwrap(), oracle);
}

#[test]
fn hostile_index_is_rejected_not_trusted() {
    let (_, oracle) = sample(12, 5);
    let path = write_v2(&oracle, &V2Config { block_rows: 4, ..V2Config::default() }, "hostile");
    let clean = std::fs::read(&path).unwrap();
    let (_, entries) = read_index(&clean);

    // Entry pointing outside its lane: overlapping its neighbor.
    let mut bad = clean.clone();
    patch_entry(&mut bad, 1, entries[0]);
    assert!(Oracle::<u64>::from_bytes(&bad).is_err(), "overlapping entries accepted");

    // Entry with an absurd length (would be a huge allocation if trusted).
    let mut bad = clean.clone();
    patch_entry(&mut bad, 0, (entries[0].0, u64::MAX / 2, entries[0].2));
    assert!(Oracle::<u64>::from_bytes(&bad).is_err(), "absurd length accepted");

    // Entry shifted out of the payload span.
    let mut bad = clean.clone();
    patch_entry(&mut bad, 0, (clean.len() as u64, entries[0].1, entries[0].2));
    assert!(Oracle::<u64>::from_bytes(&bad).is_err(), "out-of-range offset accepted");

    // Every variant must also be rejected by the lazy opener, which is
    // exactly the codepath an attacker-controlled file would reach.
    for patch in [
        entries[0],
        (entries[0].0, u64::MAX / 2, entries[0].2),
        (clean.len() as u64, entries[0].1, entries[0].2),
    ] {
        let mut bad = clean.clone();
        patch_entry(&mut bad, 1, patch);
        std::fs::write(&path, &bad).unwrap();
        assert!(PagedOracle::<u64>::open(&path, PagedConfig::default()).is_err());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn derivation_inconsistency_is_an_error_not_a_panic() {
    // A v2 snapshot whose embedded graph cannot explain its distances:
    // eager load must fail typed; it must never panic.
    let (_, oracle) = sample(8, 3);
    let wrong = Graph::from_edges(
        8,
        true,
        // A lone self-loop-free edge: almost everything is unreachable
        // in this graph, contradicting the finite distance matrix.
        vec![Edge { from: 0, to: 1, weight: 1u64 }],
    );
    let cfg = V2Config { block_rows: 2, drop_successors: true, graph: Some(&wrong) };
    let bytes = oracle.to_bytes_v2(&cfg).unwrap();
    assert!(Oracle::<u64>::from_bytes(&bytes).is_err());
}

// ---------------------------------------------------------------------------
// Fuzz: the v2 loader, like v1, must never panic on mutated input, and
// anything it accepts must serve the original answers.
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fuzzed_v2_byte_ranges_never_panic_or_corrupt(
        seed in 0u64..4,
        block_rows in 1u32..9,
        start in 0usize..100_000,
        len in 1usize..48,
        xor in proptest::collection::vec(0u8..=255u8, 48),
    ) {
        let (_, oracle) = sample(9, seed);
        let clean = oracle.to_bytes_v2(&V2Config { block_rows, ..V2Config::default() }).unwrap();
        let mut bytes = clean.clone();
        let start = start % bytes.len();
        for (i, &mask) in xor.iter().enumerate().take(len) {
            let Some(b) = bytes.get_mut(start + i) else { break };
            *b ^= mask;
        }
        match Oracle::<u64>::from_bytes(&bytes) {
            Err(_) => prop_assert_ne!(bytes, clean),
            Ok(restored) => {
                for u in 0..9u32 {
                    for v in 0..9u32 {
                        prop_assert_eq!(restored.distance(u, v), oracle.distance(u, v));
                    }
                }
            }
        }
    }
}
