//! Property-based end-to-end tests: random graphs, random parameters —
//! distributed APSP must always equal the oracle, blocker sets must always
//! cover, and the simulator must never report a CONGEST violation.

use congest_apsp::{apsp_agarwal_ramachandran, apsp_ar18, ApspConfig, BlockerMethod, Step6Method};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn paper_apsp_exact_on_random_graphs(
        n in 8usize..18,
        extra in 0usize..40,
        seed in 0u64..10_000,
        directed: bool,
        max_w in 1u64..50,
    ) {
        let g = gnm_connected(n, extra, directed, WeightDist::Uniform(0, max_w), seed);
        let out = apsp_agarwal_ramachandran(
            &g,
            &ApspConfig::default(),
            BlockerMethod::Derandomized,
            Step6Method::Pipelined,
        )
        .unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }

    #[test]
    fn ar18_exact_on_random_graphs(
        n in 8usize..18,
        extra in 0usize..30,
        seed in 0u64..10_000,
    ) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 30), seed);
        let out = apsp_ar18(&g, &ApspConfig::default()).unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }

    #[test]
    fn randomized_blocker_exact_any_seed(
        n in 8usize..16,
        seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
    ) {
        let g = gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 20), seed);
        let cfg = ApspConfig { seed: algo_seed, ..Default::default() };
        let out = apsp_agarwal_ramachandran(
            &g,
            &cfg,
            BlockerMethod::Randomized,
            Step6Method::Pipelined,
        )
        .unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }
}
