//! Property-based end-to-end tests: random graphs, random parameters —
//! distributed APSP must always equal the oracle, blocker sets must always
//! cover, and the simulator must never report a CONGEST violation.

use congest_apsp::{Algorithm, BlockerMethod, Solver};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn paper_apsp_exact_on_random_graphs(
        n in 8usize..18,
        extra in 0usize..40,
        seed in 0u64..10_000,
        directed: bool,
        max_w in 1u64..50,
    ) {
        let g = gnm_connected(n, extra, directed, WeightDist::Uniform(0, max_w), seed);
        let out = Solver::builder(&g).run().unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }

    #[test]
    fn ar18_exact_on_random_graphs(
        n in 8usize..18,
        extra in 0usize..30,
        seed in 0u64..10_000,
    ) {
        let g = gnm_connected(n, extra, true, WeightDist::Uniform(0, 30), seed);
        let out = Solver::builder(&g).algorithm(Algorithm::Ar18).run().unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }

    #[test]
    fn randomized_blocker_exact_any_seed(
        n in 8usize..16,
        seed in 0u64..10_000,
        algo_seed in 0u64..10_000,
    ) {
        let g = gnm_connected(n, 2 * n, true, WeightDist::Uniform(0, 20), seed);
        let out = Solver::builder(&g)
            .blocker_method(BlockerMethod::Randomized)
            .seed(algo_seed)
            .run()
            .unwrap();
        prop_assert_eq!(out.dist, apsp_dijkstra(&g));
    }
}
