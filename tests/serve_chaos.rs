//! Differential chaos suite for the serving path: a deterministic chaos
//! proxy sits between a [`ResilientClient`] and a live server, injecting
//! delays, pathological 1-byte segmentation, mid-frame truncations, and
//! connection resets on a seeded per-byte schedule. The contract under
//! test, across a grid of seeds × fault rates:
//!
//! 1. **Never a wrong answer.** Every reply the resilient client hands
//!    back is exactly correct for the snapshot generation it claims
//!    (generations have different weight functions, so a stale or torn
//!    answer fails loudly).
//! 2. **Never a hang.** Every operation either succeeds or fails with a
//!    typed [`ClientError::RetriesExhausted`] within its deadline.
//! 3. **Nothing leaks.** After the client and proxy go away, the server
//!    drains to zero connections and `join()` returns.
//!
//! Bit-flips are exercised separately: the wire format carries no
//! end-to-end checksum, so a flip inside a response body is undetectable
//! by construction; what the resilience layer owes under flips is typed,
//! bounded failure (flipped *requests* are fully defended — the server
//! answers `BadRequest`), not answer exactness.
//!
//! The `chaos_matrix_*` test names are stable: CI's chaos-matrix job
//! filters on them per seed and rate.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{DistMatrix, Graph, Weight};
use congest_oracle::{EngineConfig, Oracle, PortableWeight, QueryEngine};
use congest_serve::chaos::{ChaosProxy, ChaosSpec, Direction};
use congest_serve::client::{ResilientClient, ResilientOp, RetryPolicy};
use congest_serve::proto::{self, Status};
use congest_serve::{Client, ClientError, ReplyBody, Server, ServerConfig};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const N: usize = 24;

/// One generation variant: ground truth for validating replies against
/// the generation they claim.
struct Variant {
    dist: DistMatrix<u64>,
    edge: HashMap<(u32, u32), u64>,
    engine: Arc<QueryEngine<u64>>,
}

fn variant(seed: u64) -> Variant {
    let g: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 97), seed);
    let dist = apsp_dijkstra(&g);
    let mut edge = HashMap::new();
    for e in g.edges() {
        let w = edge.entry((e.from, e.to)).or_insert(e.weight);
        *w = (*w).min(e.weight);
        if !g.is_directed() {
            let w = edge.entry((e.to, e.from)).or_insert(e.weight);
            *w = (*w).min(e.weight);
        }
    }
    let engine = Arc::new(QueryEngine::new(
        Arc::new(Oracle::from_dist(&g, dist.clone())),
        EngineConfig::default(),
    ));
    Variant { dist, edge, engine }
}

fn quick_server_config() -> ServerConfig {
    ServerConfig { idle_poll: Duration::from_millis(2), ..ServerConfig::default() }
}

/// Polls until the server has drained every connection; panics if it
/// does not happen within `within` — a leaked handler.
fn assert_drained<W: PortableWeight>(handle: &congest_serve::ServerHandle<W>, within: Duration) {
    let deadline = Instant::now() + within;
    while handle.connections() > 0 {
        assert!(
            Instant::now() < deadline,
            "server still holds {} connection(s) after the clients went away",
            handle.connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Validates one reply against the variant its claimed generation maps
/// to. Returns `true` when the reply was an answer (not a shed — sheds
/// never escape the resilient client, so seeing one here is a bug).
fn check_reply(reply: &congest_serve::Reply<u64>, op: ResilientOp, variants: &[Variant]) {
    assert!(
        (1..=variants.len() as u64).contains(&reply.generation),
        "reply claims generation {} which never existed",
        reply.generation
    );
    let var = &variants[(reply.generation - 1) as usize];
    assert!(
        !reply.is_retryable(),
        "a shed status ({:?}) escaped the resilient client",
        reply.status
    );
    match op {
        ResilientOp::Dist(u, v) => {
            let want = var.dist.get(u as usize, v as usize);
            match (&reply.status, &reply.body) {
                (Status::Ok, ReplyBody::Dist(w)) => {
                    assert_eq!(*w, want, "dist({u},{v}) wrong for generation {}", reply.generation);
                }
                (Status::Unreachable, _) => assert_eq!(want, u64::INF),
                (s, b) => panic!("dist({u},{v}) under chaos: {s:?} {b:?}"),
            }
        }
        ResilientOp::Path(u, v) => {
            let want = var.dist.get(u as usize, v as usize);
            match (&reply.status, &reply.body) {
                (Status::Ok, ReplyBody::Path(p)) => {
                    assert_eq!(p.first(), Some(&u));
                    assert_eq!(p.last(), Some(&v));
                    let mut total = 0u64;
                    for step in p.windows(2) {
                        total += *var.edge.get(&(step[0], step[1])).unwrap_or_else(|| {
                            panic!(
                                "path for generation {} uses edge ({},{}) absent there",
                                reply.generation, step[0], step[1]
                            )
                        });
                    }
                    assert_eq!(
                        total, want,
                        "path({u},{v}) weight wrong for generation {}",
                        reply.generation
                    );
                }
                (Status::Unreachable, _) => assert_eq!(want, u64::INF),
                (s, b) => panic!("path({u},{v}) under chaos: {s:?} {b:?}"),
            }
        }
        ResilientOp::KNearest(u, k) => {
            // Ties make the node choice ambiguous, so validate the value
            // profile: the returned distances must equal the k smallest
            // finite distances from u (sorted), per this generation.
            let (Status::Ok, ReplyBody::KNearest(items)) = (&reply.status, &reply.body) else {
                panic!("k_nearest({u},{k}) under chaos: {:?} {:?}", reply.status, reply.body);
            };
            let mut want: Vec<u64> = (0..N)
                .filter(|&v| v != u as usize)
                .map(|v| var.dist.get(u as usize, v))
                .filter(|&d| d != u64::INF)
                .collect();
            want.sort_unstable();
            want.truncate(k as usize);
            let got: Vec<u64> = items.iter().map(|&(_, d)| d).collect();
            assert_eq!(got, want, "k_nearest({u},{k}) wrong for generation {}", reply.generation);
        }
        ResilientOp::Ping => assert_eq!(reply.status, Status::Ok),
        ResilientOp::Health => {
            let (Status::Ok, ReplyBody::Health(h)) = (&reply.status, &reply.body) else {
                panic!("health under chaos: {:?}", reply.status);
            };
            assert_eq!(h.max_connections as usize, ServerConfig::default().max_connections);
        }
    }
}

/// One grid cell: a seeded chaos spec at either the low or high rate
/// tier, a two-generation server swap mid-run, and the full contract.
fn run_chaos_cell(seed: u64, high: bool) {
    let variants = vec![variant(9000 + seed), variant(9100 + seed)];
    let handle =
        Server::bind("127.0.0.1:0", Arc::clone(&variants[0].engine), quick_server_config())
            .expect("bind");

    let spec = if high {
        ChaosSpec::seeded(seed)
            .delays(5_000, Duration::from_micros(200))
            .segmentation(20_000)
            .truncation(2_000)
            .resets(2_000)
    } else {
        ChaosSpec::seeded(seed)
            .delays(2_000, Duration::from_micros(200))
            .segmentation(5_000)
            .truncation(300)
            .resets(300)
    };
    let proxy = ChaosProxy::start(handle.local_addr(), spec).expect("proxy start");

    let policy = RetryPolicy {
        max_attempts: 32,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(20),
        op_deadline: Duration::from_secs(20),
        jitter_seed: seed,
    };
    let mut client = ResilientClient::<u64>::new(proxy.local_addr(), policy);

    let rounds = 36u64;
    let mut x = 0x9E37_79B9u64.wrapping_mul(seed + 1);
    let mut successes = 0u64;
    for round in 0..rounds {
        if round == rounds / 2 {
            assert_eq!(handle.swap_engine(Arc::clone(&variants[1].engine)), 2);
        }
        let mut ops = Vec::new();
        for j in 0..6u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) % N as u64) as u32;
            let v = ((x >> 13) % N as u64) as u32;
            ops.push(match (round + j) % 5 {
                0 => ResilientOp::Path(u, v),
                1 => ResilientOp::Ping,
                2 => ResilientOp::Health,
                3 => ResilientOp::KNearest(u, 1 + (v % 5)),
                _ => ResilientOp::Dist(u, v),
            });
        }
        let t0 = Instant::now();
        let outcome = client.execute(&ops);
        let elapsed = t0.elapsed();
        assert!(
            elapsed <= policy.op_deadline + Duration::from_secs(5),
            "operation overran its deadline: {elapsed:?} (round {round})"
        );
        match outcome {
            Ok(replies) => {
                assert_eq!(replies.len(), ops.len(), "a reply went missing");
                for (reply, &op) in replies.iter().zip(&ops) {
                    check_reply(reply, op, &variants);
                }
                successes += 1;
            }
            Err(ClientError::RetriesExhausted { attempts }) => {
                // Typed, bounded failure: acceptable under chaos, and the
                // trace must actually describe the attempts.
                assert!(!attempts.is_empty(), "exhaustion with an empty attempt trace");
            }
            Err(e) => panic!("untyped failure escaped the resilient client: {e}"),
        }
    }
    assert!(
        successes >= rounds / 2,
        "chaos starved progress: only {successes}/{rounds} rounds succeeded"
    );
    if high {
        // At the high tier faults must actually have fired; a silent
        // no-op proxy would make the whole grid vacuous.
        assert!(!proxy.trace().is_empty(), "high-rate chaos injected nothing");
        assert!(client.stats().retries > 0, "high-rate chaos never forced a retry");
    }

    drop(client);
    proxy.join();
    assert_drained(&handle, Duration::from_secs(5));
    handle.join();
}

#[test]
fn chaos_matrix_s1_low() {
    run_chaos_cell(1, false);
}
#[test]
fn chaos_matrix_s1_high() {
    run_chaos_cell(1, true);
}
#[test]
fn chaos_matrix_s2_low() {
    run_chaos_cell(2, false);
}
#[test]
fn chaos_matrix_s2_high() {
    run_chaos_cell(2, true);
}
#[test]
fn chaos_matrix_s3_low() {
    run_chaos_cell(3, false);
}
#[test]
fn chaos_matrix_s3_high() {
    run_chaos_cell(3, true);
}
#[test]
fn chaos_matrix_s4_low() {
    run_chaos_cell(4, false);
}
#[test]
fn chaos_matrix_s4_high() {
    run_chaos_cell(4, true);
}

/// Bit-flips have no exactness story without an end-to-end checksum
/// (a flipped response body is undetectable by construction), so the
/// contract here is the weaker half: every operation still terminates
/// within its deadline with either an answer or a typed error — no
/// hangs, no panics, no protocol wedge the client cannot escape.
#[test]
fn bitflips_stay_typed_and_bounded() {
    let variants = [variant(7500)];
    let handle =
        Server::bind("127.0.0.1:0", Arc::clone(&variants[0].engine), quick_server_config())
            .expect("bind");
    let spec = ChaosSpec::seeded(0xF11F).bitflips(4_000);
    let proxy = ChaosProxy::start(handle.local_addr(), spec).expect("proxy start");
    let policy = RetryPolicy {
        max_attempts: 16,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(10),
        op_deadline: Duration::from_secs(15),
        jitter_seed: 0xF11F,
    };
    let mut client = ResilientClient::<u64>::new(proxy.local_addr(), policy);
    for i in 0..40u32 {
        let t0 = Instant::now();
        let outcome = client.dist(i % N as u32, (i * 7) % N as u32);
        assert!(
            t0.elapsed() <= policy.op_deadline + Duration::from_secs(5),
            "bit-flip chaos caused a hang"
        );
        match outcome {
            Ok(_) => {}
            Err(
                ClientError::RetriesExhausted { .. }
                | ClientError::Server(_)
                | ClientError::Refused(_),
            ) => {}
            Err(e) => panic!("untyped failure under bit-flips: {e}"),
        }
    }
    drop(client);
    proxy.join();
    assert_drained(&handle, Duration::from_secs(5));
    handle.join();
}

/// The global in-flight budget sheds with a typed `Overloaded` instead
/// of queueing, `Health` reports the shed count, and the resilient
/// client re-drives only the shed requests to a complete exact answer.
#[test]
fn overload_sheds_typed_and_health_reports_it() {
    let var = variant(4242);
    let cfg = ServerConfig { max_inflight: 2, ..quick_server_config() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&var.engine), cfg.clone()).expect("bind");
    let addr = handle.local_addr();

    // Raw client first: the shed statuses must be visible and typed.
    let mut client = Client::<u64>::connect(addr).expect("connect");
    let mut shed_seen = 0usize;
    for _ in 0..20 {
        let mut batch = client.batch();
        let mut pairs = Vec::new();
        for i in 0..64u32 {
            let (u, v) = (i % N as u32, (i * 5) % N as u32);
            batch.dist(u, v);
            pairs.push((u, v));
        }
        let replies = batch.send().expect("batch under overload must still answer");
        assert_eq!(replies.len(), pairs.len(), "overload must shed, not drop");
        for (reply, &(u, v)) in replies.iter().zip(&pairs) {
            match reply.status {
                Status::Ok | Status::Unreachable => {
                    if let ReplyBody::Dist(w) = &reply.body {
                        assert_eq!(*w, var.dist.get(u as usize, v as usize));
                    }
                }
                Status::Overloaded => {
                    assert!(reply.is_retryable(), "Overloaded must classify retryable");
                    shed_seen += 1;
                }
                s => panic!("unexpected status under overload: {s:?}"),
            }
        }
        if shed_seen > 0 {
            break;
        }
    }
    assert!(shed_seen > 0, "a 64-wide batch against max_inflight=2 never shed");

    let (_, health) = client.health().expect("health must answer during overload");
    assert!(
        health.shed_overloaded >= shed_seen as u64,
        "health reports {} shed but the client saw {shed_seen}",
        health.shed_overloaded
    );
    assert_eq!(health.max_connections as usize, cfg.max_connections);

    // Resilient client: re-drives the shed requests until every answer
    // is in, and every answer is exact.
    let policy = RetryPolicy {
        max_attempts: 64,
        base: Duration::from_micros(100),
        cap: Duration::from_millis(2),
        op_deadline: Duration::from_secs(20),
        jitter_seed: 42,
    };
    let mut rc = ResilientClient::<u64>::new(addr, policy);
    let mut ops = Vec::new();
    for i in 0..48u32 {
        ops.push(ResilientOp::Dist(i % N as u32, (i * 11) % N as u32));
    }
    for _ in 0..20 {
        let replies = rc.execute(&ops).expect("re-drive must complete");
        for (reply, &op) in replies.iter().zip(&ops) {
            check_reply(reply, op, std::slice::from_ref(&var));
        }
        if rc.stats().retries > 0 {
            break;
        }
    }
    assert!(rc.stats().retries > 0, "48 queries against max_inflight=2 never re-drove");

    drop(client);
    drop(rc);
    assert_drained(&handle, Duration::from_secs(5));
    handle.join();
}

/// Per-connection window sheds (`Busy`) are equally typed and
/// retryable — the other half of the shed taxonomy.
#[test]
fn window_sheds_are_retryable_and_counted() {
    let var = variant(515);
    let cfg = ServerConfig { window: 4, ..quick_server_config() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&var.engine), cfg).expect("bind");
    let mut client = Client::<u64>::connect(handle.local_addr()).expect("connect");
    let mut busy_seen = 0u64;
    for _ in 0..20 {
        let mut batch = client.batch();
        for i in 0..16u32 {
            batch.dist(i % N as u32, (i * 3) % N as u32);
        }
        let replies = batch.send().expect("send");
        for reply in &replies {
            if reply.status == Status::Busy {
                assert!(reply.is_retryable(), "Busy must classify retryable");
                busy_seen += 1;
            }
        }
        if busy_seen > 0 {
            break;
        }
    }
    assert!(busy_seen > 0, "a 16-wide batch against window=4 never went Busy");
    let (_, health) = client.health().expect("health");
    assert!(health.shed_busy >= busy_seen, "health must count Busy sheds");
    drop(client);
    assert_drained(&handle, Duration::from_secs(5));
    handle.join();
}

/// A peer that starts a frame and stalls is reclaimed at
/// `frame_deadline` instead of pinning a handler forever.
#[test]
fn slow_loris_partial_frame_is_reclaimed() {
    let var = variant(1999);
    let cfg = ServerConfig { frame_deadline: Duration::from_millis(150), ..quick_server_config() };
    let handle = Server::bind("127.0.0.1:0", Arc::clone(&var.engine), cfg).expect("bind");

    let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
    s.write_all(&proto::encode_client_hello(<u64 as PortableWeight>::TAG)).expect("hello");
    let mut hello = [0u8; proto::SERVER_HELLO_LEN];
    s.read_exact(&mut hello).expect("server hello");

    // Promise a 13-byte frame, deliver 2 bytes, stall.
    s.write_all(&13u32.to_le_bytes()).expect("len prefix");
    s.write_all(&[0x01, 0x02]).expect("partial payload");

    s.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let t0 = Instant::now();
    let mut buf = [0u8; 64];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break, // server closed us: reclaimed
            Ok(_) => continue,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                panic!("server never reclaimed the stalled connection")
            }
            Err(_) => break, // reset is an equally valid reclamation
        }
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(100),
        "connection died before the frame had its deadline to complete"
    );
    assert!(t0.elapsed() < Duration::from_secs(4), "reclamation exceeded the deadline");
    assert_drained(&handle, Duration::from_secs(5));
    handle.join();
}

/// Health over the wire tracks swaps and reload failures, including the
/// last swap error's text.
#[test]
fn health_reports_swaps_and_reload_failures() {
    let g: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), 31);
    let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
    let path = std::env::temp_dir().join("serve_chaos_health_snapshot.bin");
    oracle.save(&path).expect("save");

    let handle = Server::bind_snapshot::<u64>("127.0.0.1:0", &path, quick_server_config())
        .expect("bind_snapshot");
    let mut client = Client::<u64>::connect(handle.local_addr()).expect("connect");

    let (gen, h) = client.health().expect("health");
    assert_eq!(gen, 1);
    assert_eq!(h.swaps, 0);
    assert_eq!(h.swap_errors, 0);
    assert!(h.last_swap_error.is_none());
    assert!(h.connections >= 1);

    // Corrupt the file: reload must fail typed and health must say why.
    std::fs::write(&path, b"not a snapshot").expect("corrupt");
    assert!(matches!(client.reload(), Err(ClientError::Server(Status::Internal))));
    let (gen, h) = client.health().expect("health after failed reload");
    assert_eq!(gen, 1, "a failed reload must not advance the generation");
    assert_eq!(h.swap_errors, 1);
    assert!(h.last_swap_error.is_some(), "the failure reason must be reported");

    // Restore a valid snapshot: reload succeeds and is counted.
    let g2: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), 32);
    Oracle::from_dist(&g2, apsp_dijkstra(&g2)).save(&path).expect("re-save");
    assert_eq!(client.reload().expect("reload"), 2);
    let (gen, h) = client.health().expect("health after swap");
    assert_eq!(gen, 2);
    assert_eq!(h.swaps, 1);
    assert_eq!(h.swap_errors, 1, "old failures stay on the record");

    std::fs::remove_file(&path).ok();
    drop(client);
    handle.join();
}

/// The satellite fix: a snapshot rewritten with **the same mtime**
/// (same-second rewrite, below the filesystem's timestamp granularity)
/// must still be picked up, because the watcher also compares a content
/// fingerprint.
#[test]
fn watcher_catches_same_mtime_rewrite() {
    let g: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), 61);
    let oracle = Oracle::from_dist(&g, apsp_dijkstra(&g));
    let path = std::env::temp_dir().join("serve_chaos_watch_snapshot.bin");
    oracle.save(&path).expect("save");
    let mtime0 = std::fs::metadata(&path).and_then(|m| m.modified()).expect("mtime");

    let cfg =
        ServerConfig { watch_interval: Some(Duration::from_millis(20)), ..quick_server_config() };
    let handle = Server::bind_snapshot::<u64>("127.0.0.1:0", &path, cfg).expect("bind_snapshot");
    assert_eq!(handle.generation(), 1);
    // Give the watcher a tick to record its baseline stamp.
    std::thread::sleep(Duration::from_millis(60));

    // Rewrite with different content, then force the mtime back so the
    // timestamps are identical — only the fingerprint can tell.
    let g2: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), 62);
    Oracle::from_dist(&g2, apsp_dijkstra(&g2)).save(&path).expect("re-save");
    std::fs::File::options()
        .write(true)
        .open(&path)
        .and_then(|f| f.set_modified(mtime0))
        .expect("restore mtime");
    let restored = std::fs::metadata(&path).and_then(|m| m.modified()).expect("mtime");
    assert_eq!(restored, mtime0, "test setup: the rewrite must not move the mtime");

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.generation() < 2 {
        assert!(
            Instant::now() < deadline,
            "watcher missed a same-mtime rewrite (mtime-only comparison regressed)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::fs::remove_file(&path).ok();
    handle.join();
}

/// A plain echo upstream for proxy-only determinism tests.
fn spawn_echo() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("echo bind");
    let addr = listener.local_addr().expect("echo addr");
    let h = std::thread::spawn(move || {
        // Serve until the listener errors out of accept (test end drops
        // nothing explicitly; the thread is detached by the caller).
        listener.set_nonblocking(true).ok();
        let started = Instant::now();
        let mut workers = Vec::new();
        while started.elapsed() < Duration::from_secs(30) {
            match listener.accept() {
                Ok((mut s, _)) => {
                    workers.push(std::thread::spawn(move || {
                        s.set_nonblocking(false).ok();
                        let mut buf = [0u8; 4096];
                        loop {
                            match s.read(&mut buf) {
                                Ok(0) | Err(_) => break,
                                Ok(k) => {
                                    if s.write_all(&buf[..k]).is_err() {
                                        break;
                                    }
                                }
                            }
                        }
                    }));
                    workers.retain(|w| !w.is_finished());
                    if workers.is_empty() && started.elapsed() > Duration::from_millis(500) {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    workers.retain(|w| !w.is_finished());
                    if workers.is_empty() && started.elapsed() > Duration::from_millis(500) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
        for w in workers {
            let _ = w.join();
        }
    });
    (addr, h)
}

/// Determinism across runs and across concurrent pump threads: the live
/// client→server trace of every connection equals the pure
/// [`ChaosSpec::schedule`], whether connections run one at a time or all
/// at once, and repeats byte-identically run to run.
#[test]
fn live_trace_matches_schedule_across_runs_and_thread_counts() {
    const LEN: usize = 1500;
    let payload: Vec<u8> = (0..LEN).map(|i| (i * 31 % 251) as u8).collect();
    let spec = ChaosSpec::seeded(0xC4A0_5EED)
        .bitflips(3_000)
        .segmentation(10_000)
        .truncation(800)
        .resets(800);

    let mut runs: Vec<Vec<congest_serve::chaos::TraceEvent>> = Vec::new();
    for &conns in &[1usize, 4, 4] {
        let (echo_addr, echo) = spawn_echo();
        let proxy = ChaosProxy::start(echo_addr, spec).expect("proxy");
        // Connect sequentially so accept order (and therefore conn ids)
        // is deterministic; then write concurrently so pump threads
        // actually interleave.
        let sockets: Vec<TcpStream> = (0..conns)
            .map(|i| {
                let before = proxy.connections();
                let s = TcpStream::connect(proxy.local_addr()).expect("connect");
                // Wait for the proxy to register this connection before
                // opening the next, pinning conn id `i` to this socket.
                let t0 = Instant::now();
                while proxy.connections() <= before {
                    assert!(
                        t0.elapsed() < Duration::from_secs(2),
                        "proxy never accepted connection {i}"
                    );
                    std::thread::sleep(Duration::from_millis(1));
                }
                s
            })
            .collect();
        std::thread::scope(|scope| {
            for mut s in sockets {
                let payload = &payload;
                scope.spawn(move || {
                    // Resets may kill the socket mid-write; that is the
                    // chaos working, not a test failure.
                    let _ = s.write_all(payload);
                    let _ = s.flush();
                    let _ = s.shutdown(std::net::Shutdown::Write);
                    let mut sink = [0u8; 4096];
                    s.set_read_timeout(Some(Duration::from_millis(200))).ok();
                    loop {
                        match s.read(&mut sink) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                    }
                });
            }
        });
        // Let the pumps finish scanning what they buffered.
        std::thread::sleep(Duration::from_millis(100));
        let trace = proxy.join();
        let _ = echo.join();

        for conn in 0..conns as u64 {
            let got: Vec<_> = trace
                .iter()
                .copied()
                .filter(|e| e.conn == conn && e.dir == Direction::ClientToServer)
                .collect();
            let want = spec.schedule(conn, Direction::ClientToServer, LEN as u64);
            assert_eq!(
                got, want,
                "conn {conn} of a {conns}-connection run diverged from the pure schedule"
            );
        }
        runs.push(
            trace
                .into_iter()
                .filter(|e| e.conn == 0 && e.dir == Direction::ClientToServer)
                .collect(),
        );
    }
    // Same seed, same payload: conn 0's trace is byte-identical whether
    // it ran alone or alongside three others, and across repeat runs.
    assert_eq!(runs[0], runs[1], "trace changed with pump thread count");
    assert_eq!(runs[1], runs[2], "trace changed across identical runs");
}

mod chaos_purity {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// `fault_at` and `schedule` are pure functions of
        /// `(seed, conn, direction, offset)`: two independently built
        /// specs with the same parameters agree everywhere, and a longer
        /// schedule extends a shorter one without rewriting history.
        #[test]
        fn schedules_are_pure_and_prefix_stable(
            seed in any::<u64>(),
            delay in 0u32..5_000,
            flip in 0u32..5_000,
            seg in 0u32..20_000,
            trunc in 0u32..3_000,
            reset in 0u32..3_000,
            len in 0u64..2_048,
            conn in 0u64..4,
        ) {
            let build = || ChaosSpec::seeded(seed)
                .delays(delay, Duration::from_micros(50))
                .bitflips(flip)
                .segmentation(seg)
                .truncation(trunc)
                .resets(reset);
            let (a, b) = (build(), build());
            for dir in [Direction::ClientToServer, Direction::ServerToClient] {
                prop_assert_eq!(a.schedule(conn, dir, len), b.schedule(conn, dir, len));
                for off in (0..len).step_by(97) {
                    prop_assert_eq!(a.fault_at(conn, dir, off), b.fault_at(conn, dir, off));
                }
                // Prefix stability: the double-length schedule starts
                // with the single-length one (terminal faults aside, the
                // short schedule IS the long one's prefix).
                let short = a.schedule(conn, dir, len);
                let long = a.schedule(conn, dir, len * 2);
                prop_assert!(long.len() >= short.len());
                prop_assert_eq!(&long[..short.len()], &short[..]);
            }
        }

        /// Different seeds decorrelate: `reseeded` produces a spec whose
        /// schedule (at these rates, over a long window) differs.
        #[test]
        fn reseeding_decorrelates(seed in any::<u64>(), salt in 1u64..u64::MAX) {
            let a = ChaosSpec::seeded(seed).segmentation(50_000);
            let b = a.reseeded(salt);
            prop_assert_eq!(a.segment_ppm, b.segment_ppm);
            // 16 KiB at 5% per byte: identical schedules under different
            // seeds are astronomically unlikely.
            prop_assert_ne!(
                a.schedule(0, Direction::ClientToServer, 16_384),
                b.schedule(0, Direction::ClientToServer, 16_384)
            );
        }
    }
}
