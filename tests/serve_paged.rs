//! Serving-side integration tests for the v2/paged work: the atomic
//! save contract (a watcher or concurrent loader can never observe a
//! torn snapshot), the widened watcher fingerprint (changes past the
//! leading block are caught), and end-to-end TCP serving from the paged
//! backend including a watcher-driven hot swap that keeps the backend
//! mode.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{Edge, Graph};
use congest_oracle::{Oracle, V2Config};
use congest_serve::{BackendMode, Client, Server, ServerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

const N: usize = 24;

fn sample(seed: u64) -> Oracle<u64> {
    let g: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 50), seed);
    Oracle::from_dist(&g, apsp_dijkstra(&g))
}

fn temp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("serve_paged_{}_{name}", std::process::id()))
}

fn quick_server_config() -> ServerConfig {
    ServerConfig { idle_poll: Duration::from_millis(2), ..ServerConfig::default() }
}

/// The satellite regression for the non-atomic save / watcher reload
/// race: a writer re-saves the watched snapshot in a tight loop while
/// the watcher polls every few milliseconds and a live client keeps
/// querying. With the old truncate-then-write save, the watcher would
/// routinely catch a half-written file and count failed swaps; with
/// atomic temp-file + rename publication, **zero** reloads may fail.
#[test]
fn watcher_races_atomic_saves_with_zero_failed_swaps() {
    let variants = [sample(70), sample(71)];
    let path = temp("atomic_race.bin");
    variants[0].save(&path).expect("initial save");

    let cfg =
        ServerConfig { watch_interval: Some(Duration::from_millis(5)), ..quick_server_config() };
    let handle = Server::bind_snapshot::<u64>("127.0.0.1:0", &path, cfg).expect("bind_snapshot");
    let addr = handle.local_addr();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for i in 0..40 {
                variants[(i + 1) % 2].save(&path).expect("re-save");
                std::thread::sleep(Duration::from_millis(8));
            }
            done.store(true, Ordering::SeqCst);
        });
        // A client hammering the server through every swap: the serving
        // plane must never hiccup while generations churn underneath it.
        let mut client = Client::<u64>::connect(addr).expect("connect");
        client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut x = 1u64;
        while !done.load(Ordering::SeqCst) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let (u, v) = (((x >> 33) % N as u64) as u32, ((x >> 13) % N as u64) as u32);
            client.dist(u, v).expect("dist during swap churn");
            client.path(u, v).expect("path during swap churn");
        }
        let (_, health) = client.health().expect("health");
        assert_eq!(
            health.swap_errors, 0,
            "the watcher observed a torn snapshot: atomic save regressed \
             (last error: {:?})",
            health.last_swap_error
        );
        assert!(health.swaps > 0, "the watcher never swapped at all");
        writer.join().unwrap();
    });
    assert!(handle.generation() > 1);
    handle.shutdown();
    handle.join();
    std::fs::remove_file(&path).ok();
}

/// The same contract at the API level, without a server: `Oracle::load`
/// racing `Oracle::save` on one path must always see a complete file —
/// the old generation or the new one, never a prefix.
#[test]
fn concurrent_loads_during_repeated_saves_always_see_whole_files() {
    let a = sample(80);
    let b = sample(81);
    let path = temp("load_race.bin");
    a.save(&path).expect("initial save");
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..30 {
                if i % 2 == 0 { &b } else { &a }.save(&path).expect("save");
            }
            done.store(true, Ordering::SeqCst);
        });
        let mut seen = 0u64;
        while !done.load(Ordering::SeqCst) {
            let got = Oracle::<u64>::load(&path).expect("load raced a save and lost");
            assert!(got == a || got == b, "loaded snapshot is neither generation");
            seen += 1;
        }
        assert!(seen > 0, "reader never overlapped the writer");
    });
    std::fs::remove_file(&path).ok();
}

/// Regression for the fingerprint gap this PR closes: the watcher used
/// to hash only the leading 4 KiB, so a same-length same-mtime rewrite
/// whose bytes differ only *past* that block was invisible. A 512-node
/// path graph with only its last edge reweighted produces exactly that
/// shape: identical header and leading distance rows, changes confined
/// to deep column-511 cells (first at byte offset 4108) and the trailing
/// checksum.
#[test]
fn watcher_catches_same_mtime_rewrite_past_the_leading_block() {
    let path_graph = |last_w: u64| {
        let edges = (0..511u32)
            .map(|i| Edge { from: i, to: i + 1, weight: if i == 510 { last_w } else { 1 } })
            .collect();
        let g: Graph<u64> = Graph::from_edges(512, true, edges);
        Oracle::from_dist(&g, apsp_dijkstra(&g))
    };
    let before = path_graph(1);
    let after = path_graph(3);
    let (b0, b1) = (before.to_bytes(), after.to_bytes());
    // Test setup proof: the rewrite is undetectable by mtime, length, or
    // the leading block alone.
    assert_eq!(b0.len(), b1.len());
    assert_eq!(b0[..4096], b1[..4096], "leading blocks must be identical for this test to bite");
    assert_ne!(b0, b1);

    let path = temp("tail_rewrite.bin");
    before.save(&path).expect("save");
    let mtime0 = std::fs::metadata(&path).and_then(|m| m.modified()).expect("mtime");
    let cfg =
        ServerConfig { watch_interval: Some(Duration::from_millis(20)), ..quick_server_config() };
    let handle = Server::bind_snapshot::<u64>("127.0.0.1:0", &path, cfg).expect("bind_snapshot");
    assert_eq!(handle.generation(), 1);
    std::thread::sleep(Duration::from_millis(60));

    after.save(&path).expect("re-save");
    std::fs::File::options()
        .write(true)
        .open(&path)
        .and_then(|f| f.set_modified(mtime0))
        .expect("restore mtime");

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.generation() < 2 {
        assert!(
            Instant::now() < deadline,
            "watcher missed a rewrite past the leading 4 KiB (tail fingerprint regressed)"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    handle.shutdown();
    handle.join();
    std::fs::remove_file(&path).ok();
}

/// End-to-end: a server on the paged backend answers a TCP client
/// bit-identically to the eager oracle, and a watcher-driven hot swap
/// reloads through the same paged backend.
#[test]
fn paged_backend_serves_tcp_and_hot_swaps() {
    let first = sample(90);
    let second = sample(91);
    let path = temp("paged_serve.snap");
    first.save_v2(&path, &V2Config { block_rows: 5, ..V2Config::default() }).expect("save v2");

    let cfg = ServerConfig {
        watch_interval: Some(Duration::from_millis(10)),
        // A few KiB: a fraction of the ~170 KiB snapshot, so the server
        // pages and evicts while answering.
        backend: BackendMode::Paged { resident_bytes: 32 << 10 },
        ..quick_server_config()
    };
    let handle = Server::bind_snapshot::<u64>("127.0.0.1:0", &path, cfg).expect("bind_snapshot");
    let mut client = Client::<u64>::connect(handle.local_addr()).expect("connect");
    client.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");

    let check_against = |client: &mut Client<u64>, oracle: &Oracle<u64>| {
        for u in 0..N as u32 {
            for v in 0..N as u32 {
                let want = oracle.distance(u, v);
                let got = client.dist(u, v).expect("dist");
                assert_eq!(got, (!congest_graph::Weight::is_inf(want)).then_some(want));
                let walk = client.path(u, v).expect("path");
                assert_eq!(walk, oracle.try_path(u, v).expect("local walk"));
            }
            assert_eq!(client.k_nearest(u, 5).expect("k_nearest"), oracle.k_nearest(u, 5));
        }
    };
    check_against(&mut client, &first);

    // Hot swap: rewrite the file as v2 (atomic), watcher reloads it
    // through the same paged backend.
    second.save_v2(&path, &V2Config { block_rows: 5, ..V2Config::default() }).expect("re-save v2");
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.generation() < 2 {
        assert!(Instant::now() < deadline, "paged watcher reload never happened");
        std::thread::sleep(Duration::from_millis(10));
    }
    check_against(&mut client, &second);

    let (_, health) = client.health().expect("health");
    assert_eq!(health.swap_errors, 0, "paged reload failed: {:?}", health.last_swap_error);
    handle.shutdown();
    handle.join();
    std::fs::remove_file(&path).ok();
}
