//! Protocol-hardening suite for the serving front-end.
//!
//! Two layers: property-based fuzzing of the pure decoders (arbitrary
//! byte soup must come back as `Ok`, "need more bytes", or a typed
//! [`ProtocolError`] — never a panic, never an out-of-bounds read), and
//! deterministic end-to-end checks that a live server answers malformed
//! traffic with typed error responses or a clean close — never a hang.

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::Weight;
use congest_oracle::{EngineConfig, Oracle, QueryEngine};
use congest_serve::proto::{
    self, HelloStatus, ProtocolError, Request, Status, CLIENT_HELLO_LEN, DEFAULT_MAX_FRAME_LEN,
    SERVER_HELLO_LEN,
};
use congest_serve::{Client, ClientError, Server, ServerConfig, ServerHandle};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------- fuzz

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bytes through the frame splitter: complete, incomplete,
    /// or typed error — never a panic.
    #[test]
    fn decode_frame_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match proto::decode_frame(&bytes, 1 << 10) {
            Ok(Some((payload, consumed))) => {
                prop_assert!(consumed <= bytes.len());
                prop_assert_eq!(payload.len() + 4, consumed);
            }
            Ok(None) => {}
            Err(ProtocolError::Oversized { len, max }) => prop_assert!(len > max),
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Arbitrary bytes through the request decoder: a request or a typed
    /// error, never a panic.
    #[test]
    fn decode_request_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = proto::decode_request(&bytes);
    }

    /// Arbitrary bytes through the response decoders (all three body
    /// shapes): typed results only.
    #[test]
    fn decode_response_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok((_, body)) = proto::decode_response_head(&bytes) {
            let _ = proto::decode_dist_body::<u64>(body);
            let _ = proto::decode_path_body(body);
            let _ = proto::decode_k_nearest_body::<u64>(body);
        }
    }

    /// A valid request frame with one bit flipped decodes to some request
    /// or a typed error — the decoder cannot be desynchronized into a
    /// panic by corruption.
    #[test]
    fn bit_flipped_requests_stay_typed(
        id in any::<u32>(),
        u in any::<u32>(),
        v in any::<u32>(),
        op_pick in 0usize..5,
        flip in 0usize..1024,
    ) {
        let req = match op_pick {
            0 => Request::Dist { id, u, v },
            1 => Request::Path { id, u, v },
            2 => Request::KNearest { id, u, k: v },
            3 => Request::Ping { id },
            _ => Request::Reload { id },
        };
        let mut wire = Vec::new();
        proto::encode_request(&mut wire, &req);
        let bit = flip % (wire.len() * 8);
        wire[bit / 8] ^= 1 << (bit % 8);
        match proto::decode_frame(&wire, DEFAULT_MAX_FRAME_LEN) {
            Ok(Some((payload, _))) => { let _ = proto::decode_request(payload); }
            Ok(None) => {}      // flipped the length prefix shorter/longer
            Err(ProtocolError::Oversized { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?}"),
        }
    }

    /// Every strict prefix of a valid frame asks for more bytes instead
    /// of misparsing.
    #[test]
    fn truncated_frames_ask_for_more(id in any::<u32>(), u in any::<u32>(), v in any::<u32>()) {
        let mut wire = Vec::new();
        proto::encode_request(&mut wire, &Request::Path { id, u, v });
        for cut in 0..wire.len() {
            prop_assert_eq!(proto::decode_frame(&wire[..cut], DEFAULT_MAX_FRAME_LEN), Ok(None));
        }
    }
}

// ------------------------------------------------------------- live e2e

fn spawn_server() -> ServerHandle<u64> {
    let g = gnm_connected(16, 48, true, WeightDist::Uniform(1, 20), 42);
    let engine = Arc::new(QueryEngine::new(
        Arc::new(Oracle::from_dist(&g, apsp_dijkstra(&g))),
        EngineConfig::default(),
    ));
    Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            acceptors: 1,
            idle_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind")
}

/// Raw socket with the handshake already performed.
fn raw_conn(handle: &ServerHandle<u64>) -> TcpStream {
    let mut s = TcpStream::connect(handle.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(&proto::encode_client_hello(1)).unwrap();
    let mut hello = [0u8; SERVER_HELLO_LEN];
    s.read_exact(&mut hello).unwrap();
    assert_eq!(proto::decode_server_hello(&hello).unwrap().status, HelloStatus::Ok);
    s
}

fn read_response(s: &mut TcpStream) -> (proto::ResponseHead, Vec<u8>) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        if let Some((payload, consumed)) =
            proto::decode_frame(&buf, DEFAULT_MAX_FRAME_LEN).expect("well-formed response")
        {
            let (head, body) = proto::decode_response_head(payload).expect("typed head");
            let body = body.to_vec();
            assert_eq!(consumed, buf.len());
            return (head, body);
        }
        s.read_exact(&mut byte).expect("server must answer, not hang");
        buf.push(byte[0]);
    }
}

/// Joins `handle` on a helper thread and asserts the drain completes
/// within `secs` — the graceful-shutdown regressions this suite guards
/// against all present as `join()` hanging forever.
fn join_within(handle: ServerHandle<u64>, secs: u64) {
    let joiner = std::thread::spawn(move || handle.join());
    let t0 = Instant::now();
    while !joiner.is_finished() {
        assert!(t0.elapsed() < Duration::from_secs(secs), "join() did not return within {secs}s");
        std::thread::sleep(Duration::from_millis(5));
    }
    joiner.join().expect("join thread panicked");
}

#[test]
fn truncated_frame_then_eof_frees_the_connection() {
    let handle = spawn_server();
    let mut s = raw_conn(&handle);
    // A length prefix promising 64 bytes that never arrive, then EOF.
    s.write_all(&64u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 8]).unwrap();
    drop(s);
    // The handler must treat EOF with an incomplete frame as terminal —
    // not spin re-reading EOF waiting for bytes that can never come.
    let t0 = Instant::now();
    while handle.connections() > 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "handler leaked after a truncated frame + close"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    join_within(handle, 10);
}

#[test]
fn shutdown_drains_a_connection_holding_a_partial_frame() {
    let handle = spawn_server();
    let mut s = raw_conn(&handle);
    s.write_all(&64u32.to_le_bytes()).unwrap();
    s.write_all(&[0u8; 8]).unwrap();
    // Give the handler a moment to buffer the partial frame, then drain
    // with the socket still open: shutdown answers only requests already
    // fully read, so the incomplete frame must not stall the drain.
    std::thread::sleep(Duration::from_millis(30));
    join_within(handle, 10);
    drop(s);
}

#[test]
fn client_handshake_times_out_against_a_silent_server() {
    // A "server" that accepts and never writes its hello.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let silent = std::thread::spawn(move || {
        let conn = listener.accept();
        std::thread::sleep(Duration::from_millis(500));
        drop(conn);
    });
    let t0 = Instant::now();
    match Client::<u64>::connect_with_timeout(addr, Duration::from_millis(100)) {
        Err(ClientError::Io(e)) => assert!(
            matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut),
            "expected a handshake timeout, got {e:?}"
        ),
        Err(e) => panic!("expected a handshake timeout, got {e:?}"),
        Ok(_) => panic!("expected a handshake timeout, got an accepted connection"),
    }
    assert!(t0.elapsed() < Duration::from_secs(5), "connect did not respect the timeout");
    silent.join().unwrap();
}

#[test]
fn version_mismatch_is_refused_with_a_typed_hello() {
    let handle = spawn_server();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut hello = proto::encode_client_hello(1);
    hello[4] = 0xEE; // bogus protocol version
    s.write_all(&hello).unwrap();
    let mut reply = [0u8; SERVER_HELLO_LEN];
    s.read_exact(&mut reply).unwrap();
    assert_eq!(proto::decode_server_hello(&reply).unwrap().status, HelloStatus::BadVersion);
    // ...and the server closes: the next read is EOF, not a hang.
    assert_eq!(s.read(&mut [0u8; 16]).unwrap(), 0);
    handle.join();
}

#[test]
fn weight_mismatch_is_refused_and_typed_by_the_client() {
    let handle = spawn_server();
    // The high-level client sees the same thing as a typed refusal.
    match Client::<congest_graph::F64>::connect(handle.local_addr()) {
        Err(ClientError::Refused(HelloStatus::WeightMismatch)) => {}
        Err(e) => panic!("expected a WeightMismatch refusal, got {e:?}"),
        Ok(_) => panic!("expected a WeightMismatch refusal, got an accepted connection"),
    }
    handle.join();
}

#[test]
fn non_protocol_peer_is_closed_without_a_reply() {
    let handle = spawn_server();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    // Not our magic: the server closes without feeding the stranger any
    // bytes. The close surfaces as EOF — or as a reset, since the server
    // drops the socket with the stranger's surplus bytes still unread.
    let mut buf = [0u8; CLIENT_HELLO_LEN];
    match s.read(&mut buf) {
        Ok(0) => {}
        Ok(k) => panic!("server sent {k} bytes to a non-protocol peer"),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::ConnectionReset | std::io::ErrorKind::ConnectionAborted
            ),
            "unexpected error kind: {e}"
        ),
    }
    handle.join();
}

#[test]
fn oversized_frame_gets_an_error_response_then_a_close() {
    let handle = spawn_server();
    let mut s = raw_conn(&handle);
    let mut wire = (DEFAULT_MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
    wire.extend_from_slice(&[0u8; 32]);
    s.write_all(&wire).unwrap();
    let (head, _) = read_response(&mut s);
    assert_eq!(head.id, proto::CONNECTION_ID);
    assert_eq!(head.status, Status::BadRequest);
    assert_eq!(s.read(&mut [0u8; 16]).unwrap(), 0, "stream is unsyncable: must close");
    handle.join();
}

#[test]
fn runt_and_unknown_op_frames_get_bad_request_and_keep_the_connection() {
    let handle = spawn_server();
    let mut s = raw_conn(&handle);

    // Runt payload (3 bytes: not even an id): BadRequest under the
    // connection id, connection stays up.
    s.write_all(&3u32.to_le_bytes()).unwrap();
    s.write_all(&[1, 2, 3]).unwrap();
    let (head, _) = read_response(&mut s);
    assert_eq!((head.id, head.status), (proto::CONNECTION_ID, Status::BadRequest));

    // Unknown opcode with a parseable id: BadRequest echoing that id.
    s.write_all(&5u32.to_le_bytes()).unwrap();
    s.write_all(&[7, 0, 0, 0, 99]).unwrap();
    let (head, _) = read_response(&mut s);
    assert_eq!((head.id, head.status), (7, Status::BadRequest));

    // Known opcode, wrong argument length: same.
    s.write_all(&7u32.to_le_bytes()).unwrap();
    s.write_all(&[8, 0, 0, 0, 1, 0xAA, 0xBB]).unwrap();
    let (head, _) = read_response(&mut s);
    assert_eq!((head.id, head.status), (8, Status::BadRequest));

    // The connection survived all three: a real request still works.
    let mut wire = Vec::new();
    proto::encode_request(&mut wire, &Request::Ping { id: 9 });
    s.write_all(&wire).unwrap();
    let (head, _) = read_response(&mut s);
    assert_eq!((head.id, head.status), (9, Status::Ok));
    handle.join();
}

#[test]
fn out_of_range_nodes_are_typed_not_fatal() {
    let handle = spawn_server();
    let mut client = Client::<u64>::connect(handle.local_addr()).expect("connect");
    match client.dist(0, 1_000_000) {
        Err(ClientError::Server(Status::NodeOutOfRange)) => {}
        other => panic!("expected NodeOutOfRange, got {other:?}"),
    }
    // Connection still healthy afterwards.
    assert!(client.dist(0, 1).is_ok());
    handle.join();
}

#[test]
fn backpressure_answers_busy_beyond_the_window() {
    let g = gnm_connected(16, 48, true, WeightDist::Uniform(1, 20), 42);
    let expected = apsp_dijkstra(&g);
    let engine = Arc::new(QueryEngine::new(
        Arc::new(Oracle::from_dist(&g, apsp_dijkstra(&g))),
        EngineConfig::default(),
    ));
    let handle = Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            acceptors: 1,
            window: 4,
            idle_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::<u64>::connect(handle.local_addr()).expect("connect");
    assert_eq!(client.window(), 4);

    // A pipelined batch larger than the window: every in-window request
    // is answered exactly, the rest are refused with Busy. TCP may split
    // a batch across reads (each chunk is its own window), so retry
    // until at least one Busy is observed — correctness is asserted on
    // every reply throughout.
    let mut saw_busy = false;
    for _ in 0..50 {
        let mut batch = client.batch();
        let mut pairs = Vec::new();
        for i in 0..12u32 {
            let (u, v) = (i % 16, (i * 5 + 3) % 16);
            batch.dist(u, v);
            pairs.push((u, v));
        }
        let replies = batch.send().expect("batch");
        assert_eq!(replies.len(), 12);
        for (reply, (u, v)) in replies.iter().zip(&pairs) {
            match reply.status {
                Status::Ok => {
                    let got = match &reply.body {
                        congest_serve::ReplyBody::Dist(w) => *w,
                        other => panic!("dist reply with body {other:?}"),
                    };
                    assert_eq!(got, expected.get(*u as usize, *v as usize));
                }
                Status::Unreachable => {
                    assert_eq!(expected.get(*u as usize, *v as usize), u64::INF);
                }
                Status::Busy => saw_busy = true,
                other => panic!("unexpected status {other:?}"),
            }
        }
        if saw_busy {
            break;
        }
    }
    assert!(saw_busy, "a 12-request batch against a window of 4 never earned a Busy");
    handle.join();
}
