//! Snapshot-swap differential test: client threads hammer a live server
//! while the main thread swaps generations in a loop. The contract under
//! test is exact: **zero** queries are dropped or errored across every
//! swap, and every single answer is exactly correct for the generation
//! the response claims to have been answered by (each generation has a
//! different weight function, so a torn read would be caught).

use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{DistMatrix, Graph, Weight};
use congest_oracle::{EngineConfig, Oracle, QueryEngine};
use congest_serve::proto::Status;
use congest_serve::{Client, ReplyBody, Server, ServerConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const N: usize = 24;
const VARIANTS: usize = 3;
const SWAPS: u64 = 30;
const CLIENTS: usize = 4;

/// One generation variant: its ground-truth matrix plus an edge-weight
/// lookup for validating returned walks.
struct Variant {
    dist: DistMatrix<u64>,
    edge: HashMap<(u32, u32), u64>,
    engine: Arc<QueryEngine<u64>>,
}

fn variant(seed: u64) -> Variant {
    // Same topology class, different weights per seed: two generations
    // never agree on all distances, so a reply checked against the wrong
    // generation's matrix fails loudly.
    let g: Graph<u64> = gnm_connected(N, 3 * N, true, WeightDist::Uniform(1, 97), seed);
    let dist = apsp_dijkstra(&g);
    let mut edge = HashMap::new();
    for e in g.edges() {
        let w = edge.entry((e.from, e.to)).or_insert(e.weight);
        *w = (*w).min(e.weight);
        if !g.is_directed() {
            let w = edge.entry((e.to, e.from)).or_insert(e.weight);
            *w = (*w).min(e.weight);
        }
    }
    let engine = Arc::new(QueryEngine::new(
        Arc::new(Oracle::from_dist(&g, dist.clone())),
        EngineConfig::default(),
    ));
    Variant { dist, edge, engine }
}

/// Generation `g` serves variant `(g - 1) % VARIANTS`.
fn variant_for(generation: u64) -> usize {
    ((generation - 1) % VARIANTS as u64) as usize
}

#[test]
fn swapping_under_load_never_drops_or_corrupts_a_query() {
    let variants: Vec<Variant> = (0..VARIANTS as u64).map(|s| variant(1000 + s)).collect();
    let handle = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&variants[0].engine),
        ServerConfig { idle_poll: Duration::from_millis(2), ..ServerConfig::default() },
    )
    .expect("bind");
    let addr = handle.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));
    let variants = Arc::new(variants);

    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            let variants = Arc::clone(&variants);
            scope.spawn(move || {
                let mut client = Client::<u64>::connect(addr).expect("connect");
                client.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
                let mut x = 0xD1B5_4A32u64.wrapping_mul(t as u64 + 1);
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // One pipelined batch of mixed dist/path requests.
                    let mut batch = client.batch();
                    let mut pairs = Vec::new();
                    for _ in 0..24 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                        let u = ((x >> 33) % N as u64) as u32;
                        let v = ((x >> 13) % N as u64) as u32;
                        if x.is_multiple_of(3) {
                            batch.path(u, v);
                        } else {
                            batch.dist(u, v);
                        }
                        pairs.push((u, v));
                    }
                    let replies = batch.send().expect("a swap must never error a batch");
                    assert_eq!(replies.len(), pairs.len(), "a swap must never drop a reply");
                    for (reply, &(u, v)) in replies.iter().zip(&pairs) {
                        let var = &variants[variant_for(reply.generation)];
                        let want = var.dist.get(u as usize, v as usize);
                        match (&reply.status, &reply.body) {
                            (Status::Ok, ReplyBody::Dist(w)) => {
                                assert_eq!(
                                    *w, want,
                                    "dist({u},{v}) wrong for generation {}",
                                    reply.generation
                                );
                            }
                            (Status::Ok, ReplyBody::Path(p)) => {
                                // The walk must be a real u→v walk in THIS
                                // generation's graph whose weight equals
                                // THIS generation's distance.
                                assert_eq!(p.first(), Some(&u));
                                assert_eq!(p.last(), Some(&v));
                                let mut total = 0u64;
                                for step in p.windows(2) {
                                    total += *var
                                        .edge
                                        .get(&(step[0], step[1]))
                                        .unwrap_or_else(|| panic!(
                                            "path for generation {} uses edge ({},{}) absent from that generation",
                                            reply.generation, step[0], step[1]
                                        ));
                                }
                                assert_eq!(
                                    total, want,
                                    "path({u},{v}) weight wrong for generation {}",
                                    reply.generation
                                );
                            }
                            (Status::Unreachable, _) => {
                                assert_eq!(want, u64::INF);
                            }
                            (s, b) => panic!("query errored under swap: {s:?} {b:?}"),
                        }
                        local += 1;
                    }
                }
                answered.fetch_add(local, Ordering::Relaxed);
            });
        }

        // Swap generations while the clients hammer.
        for g in 2..=(SWAPS + 1) {
            std::thread::sleep(Duration::from_millis(3));
            let next = &variants[variant_for(g)];
            let published = handle.swap_engine(Arc::clone(&next.engine));
            assert_eq!(published, g);
        }
        // Let a little more traffic land on the final generation.
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Relaxed);
    });

    let total = answered.load(Ordering::Relaxed);
    assert!(
        total > SWAPS * CLIENTS as u64,
        "expected sustained traffic across the swaps, saw only {total} answers"
    );
    assert_eq!(handle.generation(), SWAPS + 1);
    handle.join();
}
