//! Property tests for the PR-3 API surface: the flat `DistMatrix` arena
//! and the `Solver` facade.
//!
//! * `DistMatrix::from_rows` → `row()` / `get()` / `as_slice()` must
//!   round-trip exactly, for any shape.
//! * `Solver` under every algorithm/knob combination must match
//!   `apsp_dijkstra` on small random graphs.
//! * The compute → serve handoff (`into_oracle`) must move the arena, not
//!   copy it.

use congest_apsp::{Algorithm, BlockerMethod, Solver, Step6Method, Verbosity};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::DistMatrix;
use congest_oracle::IntoOracle;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// from_rows → row()/get()/as_slice() is the identity on the data.
    #[test]
    fn from_rows_round_trips(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..1_000_000, 7usize),
            0usize..12,
        ),
    ) {
        let m = DistMatrix::from_rows(rows.clone());
        prop_assert_eq!(m.rows(), rows.len());
        prop_assert_eq!(m.cols(), if rows.is_empty() { 0 } else { 7 });
        let mut flat = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            prop_assert_eq!(m.row(r), row.as_slice());
            prop_assert_eq!(&m[r], row.as_slice());
            for (c, &w) in row.iter().enumerate() {
                prop_assert_eq!(m.get(r, c), w);
            }
            flat.extend_from_slice(row);
        }
        prop_assert_eq!(m.as_slice(), flat.as_slice());
    }

    /// Writes through set()/IndexMut land in the right cells and nowhere
    /// else.
    #[test]
    fn set_is_local(r in 0usize..5, c in 0usize..4, w in 0u64..1000) {
        let mut m = DistMatrix::filled(5, 4, u64::MAX / 4);
        m.set(r, c, w);
        for i in 0..5 {
            for j in 0..4 {
                let expect = if (i, j) == (r, c) { w } else { u64::MAX / 4 };
                prop_assert_eq!(m.get(i, j), expect);
            }
        }
    }
}

proptest! {
    // Each case runs eight full CONGEST simulations; keep the count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every algorithm/knob combination reachable through the builder is
    /// exact on small random graphs, and toggling `track_successors` never
    /// perturbs a single distance bit — only the presence of the plane.
    #[test]
    fn solver_knob_matrix_is_exact(
        n in 8usize..14,
        extra in 0usize..24,
        seed in 0u64..10_000,
        directed: bool,
    ) {
        let g = gnm_connected(n, extra, directed, WeightDist::Uniform(0, 20), seed);
        let oracle = apsp_dijkstra(&g);
        for blocker in [
            BlockerMethod::Greedy,
            BlockerMethod::Randomized,
            BlockerMethod::Derandomized,
        ] {
            for step6 in [Step6Method::Pipelined, Step6Method::TrivialBroadcast] {
                let build = |track: bool| {
                    Solver::builder(&g)
                        .blocker_method(blocker)
                        .step6_method(step6)
                        .track_successors(track)
                        .verbosity(Verbosity::Summary)
                        .run()
                        .unwrap()
                };
                let on = build(true);
                let off = build(false);
                prop_assert!(on.dist == oracle, "Ar20/{blocker:?}/{step6:?} diverged");
                prop_assert!(on.dist.successors().is_some(), "tracking on must attach a plane");
                prop_assert!(off.dist.successors().is_none(), "tracking off must not");
                prop_assert!(
                    on.dist.as_slice() == off.dist.as_slice(),
                    "Ar20/{blocker:?}/{step6:?}: tracking perturbed the distance arena"
                );
                prop_assert!(
                    on.recorder.total_rounds() == off.recorder.total_rounds()
                        && on.recorder.total_messages() == off.recorder.total_messages(),
                    "Ar20/{blocker:?}/{step6:?}: tracking changed rounds or message counts"
                );
            }
        }
        for algorithm in [Algorithm::Ar18, Algorithm::Naive] {
            let on = Solver::builder(&g).algorithm(algorithm).run().unwrap();
            let off = Solver::builder(&g)
                .algorithm(algorithm)
                .track_successors(false)
                .run()
                .unwrap();
            prop_assert!(on.dist == oracle, "{algorithm:?} diverged");
            prop_assert!(on.dist.successors().is_some() && off.dist.successors().is_none());
            prop_assert!(
                on.dist.as_slice() == off.dist.as_slice(),
                "{algorithm:?}: tracking perturbed the distance arena"
            );
        }
    }
}

/// The outcome's arena must land in the oracle without an n² copy.
#[test]
fn into_oracle_moves_the_arena() {
    let g = gnm_connected(16, 32, true, WeightDist::Uniform(1, 9), 7);
    let out = Solver::builder(&g).run().unwrap();
    let ptr = out.dist.as_slice().as_ptr();
    let oracle = out.into_oracle(&g);
    assert_eq!(oracle.distance_row(0).as_ptr(), ptr, "arena must move, not copy");
    assert_eq!(oracle.distance(0, 15), apsp_dijkstra(&g)[0][15]);
}

/// The deprecated shims still work and agree with the builder (the one
/// place outside `congest_apsp::compat` allowed to call them).
#[test]
#[allow(deprecated)]
fn deprecated_shims_still_agree() {
    use congest_apsp::{apsp_agarwal_ramachandran, apsp_ar18, apsp_naive, ApspConfig};
    let g = gnm_connected(12, 24, true, WeightDist::Uniform(0, 9), 13);
    let cfg = ApspConfig::default();
    let oracle = apsp_dijkstra(&g);
    let shim =
        apsp_agarwal_ramachandran(&g, &cfg, BlockerMethod::Derandomized, Step6Method::Pipelined)
            .unwrap();
    assert_eq!(shim.dist, oracle);
    assert_eq!(apsp_ar18(&g, &cfg).unwrap().dist, oracle);
    assert_eq!(apsp_naive(&g, &cfg).unwrap().dist, oracle);
}
