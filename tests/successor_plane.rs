//! Differential property tests for Step-7 distributed successor tracking.
//!
//! Every pipeline-produced successor plane must (a) be adopted by the
//! oracle *without* a reverse-BFS derivation (witnessed by the process-wide
//! derivation counter), (b) survive the oracle's full plane validation
//! (`check_plane` + graph-consistency telescoping — adoption panics
//! otherwise, so building the oracle *is* the check), and (c) reconstruct
//! paths that are weight-identical to those of a derivation-built oracle
//! and to the Dijkstra distances — across directed/undirected, zero-weight
//! and real-valued (F64) graph classes, for all three algorithms.

use congest_apsp::{Algorithm, Solver, Step6Method, Verbosity};
use congest_graph::generators::{gnm_connected, WeightDist};
use congest_graph::seq::apsp_dijkstra;
use congest_graph::{Graph, NodeId, Weight, F64};
use congest_oracle::{successor_derivations, IntoOracle, Oracle};
use proptest::prelude::*;
use std::sync::Mutex;

/// The derivation counter is process-wide; tests that compare its deltas
/// must not interleave with other oracle builds in this binary.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Total weight of `walk` in `g`, taking the min parallel edge per step.
fn walk_weight<W: Weight>(g: &Graph<W>, walk: &[NodeId]) -> W {
    let mut total = W::ZERO;
    for pair in walk.windows(2) {
        let w = g
            .out_edges(pair[0])
            .filter(|&(t, _)| t == pair[1])
            .map(|(_, w)| w)
            .min()
            .expect("every path step must be an edge of the graph");
        total = total.plus(w);
    }
    total
}

/// The full differential contract for one graph + algorithm:
/// supplied-plane oracle == derived-plane oracle == Dijkstra, with zero
/// derivations on the supplied path and exactly one on the derived path.
fn check_plane_contract<W: Weight>(g: &Graph<W>, solver: Solver<'_, W>) {
    let _guard = lock();
    let exact = apsp_dijkstra(g);
    let out = solver.run().unwrap();
    assert!(out.dist.successors().is_some(), "tracking must be on by default");
    assert!(out.dist == exact, "distances diverged");

    let before = successor_derivations();
    // Adoption runs check_plane + the graph-consistency telescoping pass;
    // an invalid pipeline plane would panic right here.
    let supplied = out.into_oracle(g);
    assert_eq!(successor_derivations(), before, "supplied plane must skip the derivation");
    let derived = Oracle::from_dist(g, exact.clone());
    assert_eq!(successor_derivations(), before + 1, "plane-less build must derive");

    let n = g.n();
    for u in 0..n as NodeId {
        for v in 0..n as NodeId {
            let d = exact[u as usize][v as usize];
            let (ps, pd) = (supplied.path(u, v), derived.path(u, v));
            if u == v {
                assert_eq!(ps, Some(vec![u]));
                continue;
            }
            if d.is_inf() {
                assert!(ps.is_none() && pd.is_none(), "({u}, {v}) must be unreachable");
                continue;
            }
            let ps = ps.expect("reachable pair must have a supplied-plane path");
            let pd = pd.expect("reachable pair must have a derived-plane path");
            assert_eq!((ps[0], *ps.last().unwrap()), (u, v));
            assert_eq!(walk_weight(g, &ps), d, "supplied path ({u}, {v}) not min-weight");
            assert_eq!(walk_weight(g, &pd), d, "derived path ({u}, {v}) not min-weight");
            assert_eq!(supplied.distance(u, v), d);
        }
    }
}

proptest! {
    // Each case runs full CONGEST simulations plus n² path walks over two
    // oracles; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Ar20 (the paper pipeline) across directed/undirected and
    /// zero-weight random graphs.
    #[test]
    fn ar20_plane_is_exact(
        n in 8usize..14,
        extra in 0usize..24,
        seed in 0u64..10_000,
        directed: bool,
        zero_weights: bool,
    ) {
        let wd = if zero_weights { WeightDist::Uniform(0, 6) } else { WeightDist::Uniform(1, 9) };
        let g = gnm_connected(n, extra, directed, wd, seed);
        check_plane_contract(&g, Solver::builder(&g).verbosity(Verbosity::Summary).build());
    }

    /// The baselines fill the plane too — an independent witness computed
    /// by entirely different machinery (full SSSPs instead of the
    /// blocker/extension pipeline).
    #[test]
    fn baseline_planes_are_exact(
        n in 8usize..13,
        extra in 0usize..20,
        seed in 0u64..10_000,
        directed: bool,
    ) {
        let g = gnm_connected(n, extra, directed, WeightDist::Uniform(0, 9), seed);
        for algorithm in [Algorithm::Ar18, Algorithm::Naive] {
            check_plane_contract(
                &g,
                Solver::builder(&g).algorithm(algorithm).verbosity(Verbosity::Summary).build(),
            );
        }
    }
}

/// Real-valued weights go through the same contract (halved integers keep
/// every path sum exactly representable, so equality is exact).
#[test]
fn f64_plane_is_exact() {
    let g = gnm_connected(14, 30, true, WeightDist::Uniform(0, 8), 17);
    let gf = g.map_weights(|w| F64::new(w as f64 * 0.5));
    check_plane_contract(&gf, Solver::builder(&gf).build());
}

/// Small hop parameters force traffic through every Step-6 delivery
/// mechanism (relays and the round-robin push) and the trivial-broadcast
/// alternative; the adopted plane must stay valid in each configuration.
#[test]
fn plane_valid_under_step6_variants_and_small_h() {
    let g = gnm_connected(15, 28, true, WeightDist::Uniform(0, 7), 23);
    for h in [1usize, 2] {
        check_plane_contract(&g, Solver::builder(&g).hop_param(h).build());
        check_plane_contract(
            &g,
            Solver::builder(&g).hop_param(h).step6_method(Step6Method::TrivialBroadcast).build(),
        );
    }
}

/// With tracking off the outcome is plane-less and the oracle falls back
/// to its reverse-BFS derivation (the counter increments).
#[test]
fn tracking_off_falls_back_to_derivation() {
    let _guard = lock();
    let g = gnm_connected(14, 30, true, WeightDist::Uniform(0, 9), 3);
    let out = Solver::builder(&g).track_successors(false).run().unwrap();
    assert!(out.dist.successors().is_none(), "tracking off must not attach a plane");
    let before = successor_derivations();
    let oracle = out.into_oracle(&g);
    assert_eq!(successor_derivations(), before + 1, "plane-less outcome must derive");
    assert!(oracle.distance(0, 13) == apsp_dijkstra(&g)[0][13]);
}

/// CONGEST message-size budget: with tracking on, every phase's widest
/// message stays within 4 machine words (tree/source ids, a distance, a
/// first-hop id — each one O(log n) bits), and the per-phase payload
/// accounting is populated.
#[test]
fn message_size_within_congest_budget_with_tracking() {
    let g = gnm_connected(20, 44, true, WeightDist::Uniform(0, 9), 77);
    for algorithm in [Algorithm::Ar20, Algorithm::Ar18, Algorithm::Naive] {
        let out = Solver::builder(&g).algorithm(algorithm).run().unwrap();
        for p in out.recorder.phases() {
            assert!(
                p.max_msg_words <= 4,
                "{algorithm:?}/{}: {}-word message exceeds the O(log n)-bit budget",
                p.name,
                p.max_msg_words
            );
            if p.messages > 0 {
                assert!(p.payload_words >= p.messages, "{algorithm:?}/{}", p.name);
            }
        }
        // Tracking is visible in the accounting: some phase carries the
        // extra first-hop word.
        assert!(
            out.recorder.max_msg_words() >= 3,
            "{algorithm:?}: tracked relax messages must be ≥ 3 words"
        );
    }
}
